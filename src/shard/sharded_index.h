// Sharded DL+ serving: partition the relation into S independent
// shards, build one DualLayerIndex per shard (genuinely in parallel --
// shard builds share nothing, so S cores give ~S-way build speedup,
// and the superlinear per-shard build cost means even a single core
// wins), and answer top-k by scatter-gather.
//
// Query processing is a coordinator loop over one global min-heap that
// holds two kinds of entries:
//   * a *bound* entry per still-unopened shard, keyed by the shard's
//     frontier lower bound: the minimum Score over a small set of
//     corner points derived from the shard's skyline (layer 1 of its
//     DL+ index, chunked into <= 64 groups, one componentwise-min
//     corner per group). Every shard tuple is dominated by a skyline
//     member, every skyline member by its group corner, and dominance
//     is score-monotone even in floating point (positive weights,
//     identical left-to-right Score association everywhere) -- so no
//     tuple in the shard can score below the bound, exactly. With one
//     group this degenerates to the classic bounding-box corner; with
//     the skyline resolution it equals the true minimum score whenever
//     the skyline is small.
//   * an *item* entry per opened shard, keyed by the shard's next
//     unmerged result tuple (score, global id).
// Bound entries order before item entries of equal score, so a shard is
// opened (its DL+ index queried) only when its corner bound reaches the
// merge frontier. Shards whose bound never surfaces before the k-th
// item pops are never queried at all -- that is the pruning: with
// selective partitions (hyperplane split) most queries touch a small
// fraction of S. stats.shards_touched counts the shards that ran.
//
// ExecBudget composes across shards: each opened shard receives the
// remaining step/deadline allowance, and when any shard stops early --
// or the budget expires between shards -- the coordinator certifies the
// merged prefix against the minimum of every outstanding lower bound
// (unopened shard corners, the partial shard's frontier, opened shards'
// unreturned remainders, and unmerged heap items), exactly the
// certified-partial contract of DESIGN.md §5 lifted one level up.

#ifndef DRLI_SHARD_SHARDED_INDEX_H_
#define DRLI_SHARD_SHARDED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/point.h"
#include "common/status.h"
#include "core/dual_layer.h"
#include "topk/query.h"

namespace drli {

// How tuples are assigned to shards. Both are deterministic functions
// of (points, num_shards, partition_seed).
enum class ShardPartitioner : std::uint8_t {
  // Uniform random assignment (seeded). Shards are statistically
  // identical, so every query touches most shards -- the baseline that
  // isolates build parallelism from pruning.
  kRandom = 0,
  // Sort by the all-ones projection sum_i x_i and cut into S equal
  // slabs. The diagonal correlates with every positive weight vector
  // (w · x >= min_i(w_i)/1 * sum x_i bounds hold per-coordinate), so
  // low slabs hold the strong tuples for all queries and high slabs
  // are pruned by their corner bounds.
  kHyperplane = 1,
};

const char* ShardPartitionerName(ShardPartitioner partitioner);
// Parses "random" / "hyperplane" (case-sensitive, lowercase).
StatusOr<ShardPartitioner> ParseShardPartitioner(const std::string& name);

struct ShardedBuildOptions {
  std::size_t num_shards = 4;
  ShardPartitioner partitioner = ShardPartitioner::kHyperplane;
  std::uint64_t partition_seed = 42;

  // Per-shard DL/DL+ options. build_threads is ignored inside a shard:
  // shard builds always run serially and the *outer* loop over shards
  // parallelizes, which keeps the sharded build bit-identical across
  // thread counts (and is also the faster schedule -- shards are the
  // coarsest independent tasks available).
  DualLayerOptions shard_options;

  // Worker threads for the outer loop: 0 = DRLI_THREADS env /
  // hardware concurrency, 1 = serial.
  std::size_t build_threads = 0;

  // Display name; empty = "SDL+xS" / "SDLxS" (+ "h" for hyperplane).
  std::string name;
};

struct ShardedBuildStats {
  double partition_seconds = 0.0;
  // Wall clock of the parallel shard-build loop, and the sum of the
  // individual shard builds' build_seconds (the serial-equivalent
  // cost). cpu / wall ≈ the achieved build parallelism.
  double build_wall_seconds = 0.0;
  double build_cpu_seconds = 0.0;
  double total_seconds = 0.0;
  std::size_t min_shard_points = 0;
  std::size_t max_shard_points = 0;
};

// The deterministic shard assignment: members[s] lists the global
// tuple ids of shard s in ascending order. Ascending membership makes
// each shard's local (score, local-id) order agree with the global
// (score, global-id) order, which is what keeps the scatter-gather
// merge bit-identical to the unsharded answer under the canonical
// tie-break. Exposed for tests.
std::vector<std::vector<TupleId>> PartitionPoints(
    const PointSet& points, std::size_t num_shards,
    ShardPartitioner partitioner, std::uint64_t partition_seed);

class ShardedDualLayerIndex final : public TopKIndex {
 public:
  static ShardedDualLayerIndex Build(PointSet points,
                                     const ShardedBuildOptions& options = {});

  ShardedDualLayerIndex(ShardedDualLayerIndex&&) = default;
  ShardedDualLayerIndex& operator=(ShardedDualLayerIndex&&) = default;

  std::string name() const override { return name_; }
  std::size_t size() const override { return total_points_; }

  // Scatter-gather merge; bit-identical to the unsharded index's answer
  // (items, canonical order) for any shard count and partitioner.
  // stats.shards_touched reports how many shards actually ran;
  // stats.tuples_evaluated sums the per-shard traversal costs.
  TopKResult Query(const TopKQuery& query) const override;
  // Parallel batch over ParallelThreadCount() workers (the per-shard
  // indexes' thread-local scratches make the serial Query reentrant
  // per-thread).
  std::vector<TopKResult> QueryBatch(
      const std::vector<TopKQuery>& queries) const override;
  using TopKIndex::QueryBatch;

  // --- introspection (tests, serialization, bench) ---
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t dim() const override { return dim_; }
  const DualLayerIndex& shard(std::size_t s) const { return shards_[s]; }
  const std::vector<TupleId>& shard_members(std::size_t s) const {
    return members_[s];
  }
  ShardPartitioner partitioner() const { return partitioner_; }
  std::uint64_t partition_seed() const { return partition_seed_; }
  const ShardedBuildStats& build_stats() const { return build_stats_; }
  // Frontier lower bound of shard s for weight vector w (tests).
  double ShardLowerBound(std::size_t s, PointView weights) const;
  // Bound corner points of shard s (tests).
  std::size_t NumBoundPoints(std::size_t s) const {
    return (bound_offsets_[s + 1] - bound_offsets_[s]) / dim_;
  }

  // Cap on corner points per shard; bounds the per-query cost of
  // seeding the merge heap at S * 64 * d flops.
  static constexpr std::size_t kMaxBoundPointsPerShard = 64;

 private:
  friend StatusOr<ShardedDualLayerIndex> LoadShardedIndex(
      const std::string& path, const struct ShardedLoadOptions& options);

  ShardedDualLayerIndex() = default;

  // Derives the bound corner sets from the shard skylines; called
  // after build and after load (bounds are never persisted).
  void ComputeShardBounds();

  std::string name_;
  std::size_t dim_ = 0;
  std::size_t total_points_ = 0;
  ShardPartitioner partitioner_ = ShardPartitioner::kHyperplane;
  std::uint64_t partition_seed_ = 0;
  ShardedBuildStats build_stats_;

  std::vector<DualLayerIndex> shards_;
  // members_[s] = ascending global ids of shard s; the inverse of the
  // per-shard local id space.
  std::vector<std::vector<TupleId>> members_;
  // Bound corner points of shard s: d-dimensional rows in
  // bound_values_[bound_offsets_[s], bound_offsets_[s + 1]). Empty
  // shards have an empty range (their bound entry is never enqueued).
  std::vector<double> bound_values_;
  std::vector<std::size_t> bound_offsets_;
};

}  // namespace drli

#endif  // DRLI_SHARD_SHARDED_INDEX_H_
