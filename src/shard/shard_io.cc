#include "shard/shard_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "common/crc32c.h"

namespace drli {

namespace {

using shard_manifest::kMagic;
using shard_manifest::kMaxNameLength;
using shard_manifest::kMaxShards;
using shard_manifest::kVersion;

void AppendU32(std::string* out, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(bytes, 4);
}

void AppendU64(std::string* out, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(bytes, 8);
}

// Bounded little-endian reader over the manifest bytes; every Read
// checks the remaining length so a truncated or lying manifest becomes
// a Corruption status, never an out-of-bounds read.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}

  bool ReadU32(std::uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool ReadU64(std::uint64_t* v) {
    if (size_ - pos_ < 8) return false;
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool ReadString(std::uint64_t length, std::string* v) {
    if (size_ - pos_ < length) return false;
    v->assign(data_ + pos_, static_cast<std::size_t>(length));
    pos_ += static_cast<std::size_t>(length);
    return true;
  }

  std::size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Directory prefix of `path` including the trailing separator, "" for a
// bare filename -- shard files are addressed relative to the manifest.
std::string DirOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

std::string BaseOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + tmp + " for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  const bool flushed = bool(out);
  out.close();
  if (!flushed || out.fail()) {
    std::remove(tmp.c_str());
    return Status::IoError("write failure on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IoError("cannot stat " + path);
  in.seekg(0, std::ios::beg);
  std::string bytes(static_cast<std::size_t>(size), '\0');
  if (size > 0 && !in.read(bytes.data(), size)) {
    return Status::IoError("cannot read " + path);
  }
  return bytes;
}

// A shard file name must stay inside the manifest's directory.
bool SafeRelativeFile(const std::string& name) {
  if (name.empty() || name == "." || name == "..") return false;
  return name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos;
}

Status CorruptManifest(const std::string& path, const std::string& detail) {
  return Status::Corruption("shard manifest " + path + ": " + detail);
}

// Parses + validates everything except the shard files themselves.
// `members` is optional (Inspect skips materializing the id lists).
Status ParseManifest(const std::string& path, const std::string& bytes,
                     ShardManifestInfo* info,
                     std::vector<std::vector<TupleId>>* members) {
  // Header (40 bytes) + name length + checksum is the smallest legal
  // manifest; anything shorter cannot even hold the trailer.
  if (bytes.size() < 40 + 8 + 4) {
    return CorruptManifest(path, "truncated");
  }
  const std::size_t body = bytes.size() - 4;
  std::uint32_t stored_crc = 0;
  {
    Cursor trailer(bytes.data() + body, 4);
    trailer.ReadU32(&stored_crc);
  }
  const std::uint32_t actual_crc = Crc32c(bytes.data(), body);
  Cursor cursor(bytes.data(), body);

  std::uint32_t magic = 0, version = 0, dim = 0, partitioner = 0;
  cursor.ReadU32(&magic);
  if (magic != kMagic) return CorruptManifest(path, "bad magic");
  // Magic before checksum so a non-manifest file reads as "not a
  // manifest", but any bit flip inside a real manifest -- trailer
  // included -- is a checksum failure.
  if (actual_crc != stored_crc) return CorruptManifest(path, "checksum mismatch");
  cursor.ReadU32(&version);
  if (version != kVersion) {
    return CorruptManifest(path,
                           "unsupported version " + std::to_string(version));
  }
  cursor.ReadU32(&dim);
  if (dim == 0 || dim > snapshot::kMaxDim) {
    return CorruptManifest(path, "dim out of range");
  }
  cursor.ReadU32(&partitioner);
  if (partitioner > 1) return CorruptManifest(path, "unknown partitioner");
  std::uint64_t num_shards = 0, total_points = 0, partition_seed = 0,
                flags = 0, name_len = 0;
  cursor.ReadU64(&num_shards);
  cursor.ReadU64(&total_points);
  cursor.ReadU64(&partition_seed);
  cursor.ReadU64(&flags);
  if (!cursor.ReadU64(&name_len)) return CorruptManifest(path, "truncated");
  if (num_shards == 0 || num_shards > kMaxShards) {
    return CorruptManifest(path, "shard count out of range");
  }
  if (total_points >= kInvalidTupleId) {
    return CorruptManifest(path, "total_points out of range");
  }
  // Every tuple id occupies 4 manifest bytes, so a total beyond
  // size/4 cannot be covered -- reject before sizing the seen bitmap.
  if (total_points > bytes.size() / 4) {
    return CorruptManifest(path, "total_points exceeds manifest capacity");
  }
  if (flags != 0) return CorruptManifest(path, "unknown flags");
  if (name_len > kMaxNameLength) return CorruptManifest(path, "name too long");
  std::string name;
  if (!cursor.ReadString(name_len, &name)) {
    return CorruptManifest(path, "truncated name");
  }

  info->version = version;
  info->dim = dim;
  info->partitioner = static_cast<ShardPartitioner>(partitioner);
  info->num_shards = num_shards;
  info->total_points = total_points;
  info->partition_seed = partition_seed;
  info->name = std::move(name);

  std::vector<std::uint8_t> seen(static_cast<std::size_t>(total_points), 0);
  std::uint64_t covered = 0;
  if (members != nullptr) members->resize(static_cast<std::size_t>(num_shards));
  for (std::uint64_t s = 0; s < num_shards; ++s) {
    std::uint64_t num_points = 0, file_len = 0;
    if (!cursor.ReadU64(&num_points) || !cursor.ReadU64(&file_len)) {
      return CorruptManifest(path, "truncated shard table");
    }
    if (num_points > total_points) {
      return CorruptManifest(path, "shard cardinality exceeds total");
    }
    if (file_len == 0 || file_len > kMaxNameLength) {
      return CorruptManifest(path, "shard file name length out of range");
    }
    std::string file;
    if (!cursor.ReadString(file_len, &file)) {
      return CorruptManifest(path, "truncated shard file name");
    }
    if (!SafeRelativeFile(file)) {
      return CorruptManifest(path, "unsafe shard file name: " + file);
    }
    if (cursor.remaining() < num_points * 4) {
      return CorruptManifest(path, "truncated member list");
    }
    TupleId previous = 0;
    bool first = true;
    std::vector<TupleId>* out =
        members != nullptr ? &(*members)[static_cast<std::size_t>(s)] : nullptr;
    if (out != nullptr) out->reserve(static_cast<std::size_t>(num_points));
    for (std::uint64_t i = 0; i < num_points; ++i) {
      std::uint32_t id = 0;
      cursor.ReadU32(&id);
      if (id >= total_points) {
        return CorruptManifest(path, "member id out of range");
      }
      if (!first && id <= previous) {
        return CorruptManifest(path, "member ids not strictly ascending");
      }
      if (seen[id] != 0) {
        return CorruptManifest(path, "tuple assigned to two shards");
      }
      seen[id] = 1;
      ++covered;
      previous = id;
      first = false;
      if (out != nullptr) out->push_back(id);
    }
    info->shards.push_back(
        ShardManifestShardInfo{num_points, std::move(file)});
  }
  if (covered != total_points) {
    return CorruptManifest(path, "shards do not cover the relation");
  }
  if (cursor.remaining() != 0) {
    return CorruptManifest(path, "trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

std::string ShardFilePath(const std::string& manifest_path, std::size_t s) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".shard-%04zu", s);
  return manifest_path + suffix;
}

Status SaveShardedIndex(const ShardedDualLayerIndex& index,
                        const std::string& path,
                        const ShardedSaveOptions& options) {
  // Shards first, manifest last: the manifest only ever points at
  // fully committed shard snapshots.
  for (std::size_t s = 0; s < index.num_shards(); ++s) {
    const Status status =
        SaveDualLayerIndex(index.shard(s), ShardFilePath(path, s),
                           options.snapshot);
    if (!status.ok()) return status;
  }

  std::string bytes;
  AppendU32(&bytes, kMagic);
  AppendU32(&bytes, kVersion);
  AppendU32(&bytes, static_cast<std::uint32_t>(index.dim()));
  AppendU32(&bytes, static_cast<std::uint32_t>(index.partitioner()));
  AppendU64(&bytes, index.num_shards());
  AppendU64(&bytes, index.size());
  AppendU64(&bytes, index.partition_seed());
  AppendU64(&bytes, 0);  // flags
  const std::string name = index.name();
  AppendU64(&bytes, name.size());
  bytes.append(name);
  const std::string base = BaseOf(path);
  for (std::size_t s = 0; s < index.num_shards(); ++s) {
    const std::vector<TupleId>& members = index.shard_members(s);
    AppendU64(&bytes, members.size());
    const std::string file = BaseOf(ShardFilePath(base, s));
    AppendU64(&bytes, file.size());
    bytes.append(file);
    for (const TupleId id : members) AppendU32(&bytes, id);
  }
  AppendU32(&bytes, Crc32c(bytes.data(), bytes.size()));
  return WriteFileAtomic(path, bytes);
}

StatusOr<ShardedDualLayerIndex> LoadShardedIndex(
    const std::string& path, const ShardedLoadOptions& options) {
  StatusOr<std::string> bytes = ReadWholeFile(path);
  if (!bytes.ok()) return bytes.status();
  ShardManifestInfo info;
  std::vector<std::vector<TupleId>> members;
  {
    const Status status = ParseManifest(path, bytes.value(), &info, &members);
    if (!status.ok()) return status;
  }

  ShardedDualLayerIndex index;
  index.dim_ = info.dim;
  index.total_points_ = static_cast<std::size_t>(info.total_points);
  index.partitioner_ = info.partitioner;
  index.partition_seed_ = info.partition_seed;
  index.name_ = info.name;
  index.members_ = std::move(members);

  const std::string dir = DirOf(path);
  index.shards_.reserve(static_cast<std::size_t>(info.num_shards));
  for (std::size_t s = 0; s < info.num_shards; ++s) {
    const std::string shard_path = dir + info.shards[s].file;
    StatusOr<DualLayerIndex> shard =
        LoadDualLayerIndex(shard_path, options.snapshot);
    if (!shard.ok()) return shard.status();
    if (shard.value().points().dim() != info.dim) {
      return Status::Corruption("shard " + shard_path +
                                ": dim does not match manifest");
    }
    if (shard.value().size() != info.shards[s].num_points) {
      return Status::Corruption("shard " + shard_path +
                                ": cardinality does not match manifest");
    }
    index.shards_.push_back(std::move(shard).value());
  }
  index.ComputeShardBounds();
  return index;
}

bool IsShardManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char bytes[4];
  if (!in.read(bytes, 4)) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes, 4);
  return magic == kMagic;  // little-endian build targets only
}

StatusOr<ShardManifestInfo> InspectShardManifest(const std::string& path) {
  StatusOr<std::string> bytes = ReadWholeFile(path);
  if (!bytes.ok()) return bytes.status();
  ShardManifestInfo info;
  const Status status = ParseManifest(path, bytes.value(), &info, nullptr);
  if (!status.ok()) return status;
  return info;
}

}  // namespace drli
