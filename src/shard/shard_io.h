// Persistence for ShardedDualLayerIndex: one standard v2 snapshot per
// shard (core/serialization -- checksummed sections, atomic writes,
// mmap zero-copy loads all apply unchanged) plus a small checksummed
// manifest that records the partition: which global tuple ids live in
// which shard file.
//
// Manifest layout (little-endian, CRC-32C over everything before the
// trailing checksum):
//   u32 magic "DRLS"   u32 version   u32 dim   u32 partitioner
//   u64 num_shards     u64 total_points   u64 partition_seed
//   u64 flags (reserved, 0)
//   u64 name_len, name bytes
//   per shard: u64 num_points; u64 file_len, file bytes (relative,
//              path-separator-free); num_points x u32 ascending global
//              tuple ids
//   u32 crc32c
// The loader trusts nothing: every length is bounded before use, the
// member lists must form an exact partition of [0, total_points), the
// per-shard files must parse as valid snapshots of matching dim and
// cardinality. Shard corner bounds are recomputed from the loaded
// points, never persisted.

#ifndef DRLI_SHARD_SHARD_IO_H_
#define DRLI_SHARD_SHARD_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/serialization.h"
#include "shard/sharded_index.h"

namespace drli {

namespace shard_manifest {
inline constexpr std::uint32_t kMagic = 0x534c5244;  // "DRLS" LE
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kMaxShards = 4096;
inline constexpr std::size_t kMaxNameLength = 4096;
}  // namespace shard_manifest

struct ShardedSaveOptions {
  // Format options applied to every per-shard snapshot.
  SnapshotSaveOptions snapshot{};
};

struct ShardedLoadOptions {
  // Load options applied to every per-shard snapshot (mmap by default).
  SnapshotLoadOptions snapshot{};
};

// The on-disk file of shard `s` for a manifest at `manifest_path`:
// "<manifest_path>.shard-NNNN". Exposed so tests and tools can target
// individual shard files (fault injection, missing-file paths).
std::string ShardFilePath(const std::string& manifest_path, std::size_t s);

// Writes every shard snapshot and then the manifest, each atomically
// (temp file + rename), manifest last -- a crash mid-save leaves either
// the old index or stray shard files, never a manifest pointing at
// missing or torn shards.
Status SaveShardedIndex(const ShardedDualLayerIndex& index,
                        const std::string& path,
                        const ShardedSaveOptions& options = {});

// Reads a manifest and all shard snapshots written by SaveShardedIndex.
StatusOr<ShardedDualLayerIndex> LoadShardedIndex(
    const std::string& path, const ShardedLoadOptions& options = {});

// Cheap probe: does `path` start with the shard-manifest magic? Used by
// the CLI to route --index files to the sharded or single-index loader.
bool IsShardManifest(const std::string& path);

// --- manifest metadata (drli inspect, tests) ---

struct ShardManifestShardInfo {
  std::uint64_t num_points = 0;
  std::string file;  // relative to the manifest's directory
};

struct ShardManifestInfo {
  std::uint32_t version = 0;
  std::size_t dim = 0;
  ShardPartitioner partitioner = ShardPartitioner::kRandom;
  std::uint64_t num_shards = 0;
  std::uint64_t total_points = 0;
  std::uint64_t partition_seed = 0;
  std::string name;
  std::vector<ShardManifestShardInfo> shards;
};

// Parses and fully validates the manifest (checksum included) without
// touching the shard files.
StatusOr<ShardManifestInfo> InspectShardManifest(const std::string& path);

}  // namespace drli

#endif  // DRLI_SHARD_SHARD_IO_H_
