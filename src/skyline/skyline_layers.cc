#include "skyline/skyline_layers.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "geometry/convex_skyline.h"

namespace drli {

LayerDecomposition BuildSkylineLayers(const PointSet& points,
                                      SkylineAlgorithm algorithm) {
  LayerDecomposition out;
  out.layer_of.assign(points.size(), 0);
  std::vector<TupleId> remaining(points.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  while (!remaining.empty()) {
    std::vector<TupleId> layer =
        ComputeSkylineOfSubset(points, remaining, algorithm);
    DRLI_CHECK(!layer.empty()) << "skyline of a non-empty set is non-empty";
    const std::size_t layer_index = out.layers.size();
    for (TupleId id : layer) out.layer_of[id] = layer_index;
    // Remove the layer (both lists are ascending).
    std::vector<TupleId> next;
    next.reserve(remaining.size() - layer.size());
    std::set_difference(remaining.begin(), remaining.end(), layer.begin(),
                        layer.end(), std::back_inserter(next));
    remaining = std::move(next);
    out.layers.push_back(std::move(layer));
  }
  return out;
}

ConvexLayerDecomposition BuildConvexLayers(const PointSet& points,
                                           std::size_t max_layers,
                                           SkylineAlgorithm algorithm) {
  ConvexLayerDecomposition out;
  out.layer_of.assign(points.size(), 0);
  std::vector<TupleId> remaining(points.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  while (!remaining.empty()) {
    if (out.layers.size() == max_layers) {
      // Budget exhausted: the remainder becomes one final
      // complete-access layer.
      for (TupleId id : remaining) out.layer_of[id] = out.layers.size();
      out.layers.push_back(std::move(remaining));
      out.truncated = true;
      break;
    }
    // CSKY(S) = CSKY(SKY(S)): reduce to the skyline before the hull.
    std::vector<TupleId> sky =
        ComputeSkylineOfSubset(points, remaining, algorithm);
    const PointSet sky_points = points.Subset(sky);
    const ConvexSkylineResult csky = ComputeConvexSkyline(sky_points);
    std::vector<TupleId> layer;
    layer.reserve(csky.members.size());
    for (TupleId local : csky.members) layer.push_back(sky[local]);
    std::sort(layer.begin(), layer.end());
    DRLI_CHECK(!layer.empty());
    const std::size_t layer_index = out.layers.size();
    for (TupleId id : layer) out.layer_of[id] = layer_index;
    std::vector<TupleId> next;
    next.reserve(remaining.size() - layer.size());
    std::set_difference(remaining.begin(), remaining.end(), layer.begin(),
                        layer.end(), std::back_inserter(next));
    remaining = std::move(next);
    out.layers.push_back(std::move(layer));
  }
  return out;
}

void ForEachDominancePair(
    const PointSet& points, const std::vector<TupleId>& upper,
    const std::vector<TupleId>& lower,
    const std::function<void(TupleId source, TupleId target)>& edge) {
  const std::size_t d = points.dim();
  std::vector<std::pair<double, TupleId>> upper_by_sum;
  upper_by_sum.reserve(upper.size());
  for (TupleId id : upper) {
    double s = 0.0;
    const PointView p = points[id];
    for (std::size_t j = 0; j < d; ++j) s += p[j];
    upper_by_sum.emplace_back(s, id);
  }
  std::sort(upper_by_sum.begin(), upper_by_sum.end());
  for (TupleId target : lower) {
    const PointView tp = points[target];
    double target_sum = 0.0;
    for (std::size_t j = 0; j < d; ++j) target_sum += tp[j];
    for (const auto& [sum, source] : upper_by_sum) {
      if (sum >= target_sum) break;
      if (Dominates(points[source], tp)) edge(source, target);
    }
  }
}

}  // namespace drli
