#include "skyline/skyline_layers.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "geometry/convex_skyline.h"
#include "skyline/dominance_tree.h"

namespace drli {

LayerDecomposition BuildSkylineLayers(const PointSet& points,
                                      SkylineAlgorithm /*algorithm*/) {
  LayerDecomposition out;
  const std::size_t n = points.size();
  out.layer_of.assign(n, 0);
  if (n == 0) return out;
  const std::size_t d = points.dim();

  // Ascending (attribute sum, id): every dominator of a point strictly
  // precedes it (strict dominance implies a strictly smaller sum).
  std::vector<std::pair<double, TupleId>> order;
  order.reserve(n);
  for (TupleId id = 0; id < n; ++id) {
    const PointView p = points[id];
    double s = 0.0;
    for (std::size_t j = 0; j < d; ++j) s += p[j];
    order.emplace_back(s, id);
  }
  std::sort(order.begin(), order.end());

  // layer_of[p] = 1 + max layer among p's dominators, all of which are
  // already placed. "Layer ℓ contains a dominator of p" is downward
  // closed in ℓ (a layer-ℓ dominator is itself dominated by a chain
  // through every earlier layer), so the target layer is the binary-
  // searched least ℓ whose member set holds no dominator of p.
  std::vector<IncrementalDominatorSet> windows;
  for (const auto& [sum, id] : order) {
    const PointView p = points[id];
    std::size_t lo = 0;
    std::size_t hi = windows.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (windows[mid].AnyDominates(p)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == windows.size()) {
      windows.emplace_back(points);
      out.layers.emplace_back();
    }
    windows[lo].Add(id);
    out.layers[lo].push_back(id);
    out.layer_of[id] = lo;
  }
  // Insertion was in sum order; the contract is ascending ids.
  for (std::vector<TupleId>& layer : out.layers) {
    std::sort(layer.begin(), layer.end());
  }
  return out;
}

LayerDecomposition BuildSkylineLayersByPeeling(const PointSet& points,
                                               SkylineAlgorithm algorithm) {
  LayerDecomposition out;
  out.layer_of.assign(points.size(), 0);
  std::vector<TupleId> remaining(points.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  while (!remaining.empty()) {
    std::vector<TupleId> layer =
        ComputeSkylineOfSubset(points, remaining, algorithm);
    DRLI_CHECK(!layer.empty()) << "skyline of a non-empty set is non-empty";
    const std::size_t layer_index = out.layers.size();
    for (TupleId id : layer) out.layer_of[id] = layer_index;
    // Remove the layer (both lists are ascending).
    std::vector<TupleId> next;
    next.reserve(remaining.size() - layer.size());
    std::set_difference(remaining.begin(), remaining.end(), layer.begin(),
                        layer.end(), std::back_inserter(next));
    remaining = std::move(next);
    out.layers.push_back(std::move(layer));
  }
  return out;
}

ConvexLayerDecomposition BuildConvexLayers(const PointSet& points,
                                           std::size_t max_layers,
                                           SkylineAlgorithm algorithm) {
  ConvexLayerDecomposition out;
  out.layer_of.assign(points.size(), 0);
  std::vector<TupleId> remaining(points.size());
  std::iota(remaining.begin(), remaining.end(), 0);
  while (!remaining.empty()) {
    if (out.layers.size() == max_layers) {
      // Budget exhausted: the remainder becomes one final
      // complete-access layer.
      for (TupleId id : remaining) out.layer_of[id] = out.layers.size();
      out.layers.push_back(std::move(remaining));
      out.truncated = true;
      break;
    }
    // CSKY(S) = CSKY(SKY(S)): reduce to the skyline before the hull.
    std::vector<TupleId> sky =
        ComputeSkylineOfSubset(points, remaining, algorithm);
    const PointSet sky_points = points.Subset(sky);
    const ConvexSkylineResult csky = ComputeConvexSkyline(sky_points);
    std::vector<TupleId> layer;
    layer.reserve(csky.members.size());
    for (TupleId local : csky.members) layer.push_back(sky[local]);
    std::sort(layer.begin(), layer.end());
    DRLI_CHECK(!layer.empty());
    const std::size_t layer_index = out.layers.size();
    for (TupleId id : layer) out.layer_of[id] = layer_index;
    std::vector<TupleId> next;
    next.reserve(remaining.size() - layer.size());
    std::set_difference(remaining.begin(), remaining.end(), layer.begin(),
                        layer.end(), std::back_inserter(next));
    remaining = std::move(next);
    out.layers.push_back(std::move(layer));
  }
  return out;
}

void ForEachDominancePair(
    const PointSet& points, const std::vector<TupleId>& upper,
    const std::vector<TupleId>& lower,
    const std::function<void(TupleId source, TupleId target)>& edge,
    DominancePairStats* stats) {
  if (upper.empty() || lower.empty()) return;
  DominanceTree tree;
  tree.Build(points, upper);
  DominanceTreeStats tree_stats;
  for (TupleId target : lower) {
    tree.ForEachDominator(
        points[target], [&](TupleId source) { edge(source, target); },
        &tree_stats);
  }
  if (stats != nullptr) {
    stats->pairs_pruned += tree_stats.pruned;
    stats->pairs_tested += tree_stats.tested;
  }
}

}  // namespace drli
