#include "skyline/dominance_tree.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace drli {

namespace {

constexpr std::uint32_t kLeafSize = 8;
constexpr std::size_t kTailBlock = 16;

bool CornersEqual(const double* a, PointView b, std::size_t d) {
  for (std::size_t j = 0; j < d; ++j) {
    if (a[j] != b[j]) return false;
  }
  return true;
}

}  // namespace

void DominanceTree::Build(const PointSet& points,
                          const std::vector<TupleId>& ids) {
  dim_ = points.dim();
  const std::size_t m = ids.size();
  nodes_.clear();
  bounds_.clear();
  ids_.assign(ids.begin(), ids.end());
  coords_.resize(m * dim_);
  if (m == 0) return;

  // Gather once in input order; BuildNode permutes an index array and
  // the gathered data is rearranged to match afterwards, so leaf
  // member ranges end up contiguous.
  std::vector<double> raw(m * dim_);
  for (std::size_t i = 0; i < m; ++i) {
    const PointView p = points[ids[i]];
    std::copy(p.begin(), p.end(), raw.begin() + i * dim_);
  }
  std::vector<std::uint32_t> perm(m);
  std::iota(perm.begin(), perm.end(), 0);
  nodes_.reserve(2 * (m / kLeafSize + 2));
  BuildNode(0, static_cast<std::uint32_t>(m), raw, ids, &perm);
  for (std::size_t i = 0; i < m; ++i) {
    ids_[i] = ids[perm[i]];
    std::copy(raw.begin() + perm[i] * dim_, raw.begin() + (perm[i] + 1) * dim_,
              coords_.begin() + i * dim_);
  }
}

std::uint32_t DominanceTree::BuildNode(std::uint32_t begin, std::uint32_t end,
                                       const std::vector<double>& raw,
                                       const std::vector<TupleId>& ids,
                                       std::vector<std::uint32_t>* perm) {
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{begin, end, -1});
  const std::size_t bounds_at = bounds_.size();
  bounds_.resize(bounds_at + 2 * dim_);

  // Subtree bounds over the current range.
  {
    double* bmin = bounds_.data() + bounds_at;
    double* bmax = bmin + dim_;
    const double* first = raw.data() + (*perm)[begin] * dim_;
    std::copy(first, first + dim_, bmin);
    std::copy(first, first + dim_, bmax);
    for (std::uint32_t i = begin + 1; i < end; ++i) {
      const double* p = raw.data() + (*perm)[i] * dim_;
      for (std::size_t j = 0; j < dim_; ++j) {
        bmin[j] = std::min(bmin[j], p[j]);
        bmax[j] = std::max(bmax[j], p[j]);
      }
    }
  }
  if (end - begin <= kLeafSize) return idx;

  // Median split on the widest axis; (coordinate, id) is a total order,
  // so the partition is a deterministic function of the member set.
  std::size_t axis = 0;
  {
    const double* bmin = bounds_.data() + bounds_at;
    const double* bmax = bmin + dim_;
    double widest = bmax[0] - bmin[0];
    for (std::size_t j = 1; j < dim_; ++j) {
      const double extent = bmax[j] - bmin[j];
      if (extent > widest) {
        widest = extent;
        axis = j;
      }
    }
  }
  const std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(perm->begin() + begin, perm->begin() + mid,
                   perm->begin() + end,
                   [&](std::uint32_t a, std::uint32_t b) {
                     const double ca = raw[a * dim_ + axis];
                     const double cb = raw[b * dim_ + axis];
                     if (ca != cb) return ca < cb;
                     return ids[a] < ids[b];
                   });
  BuildNode(begin, mid, raw, ids, perm);
  const std::uint32_t right = BuildNode(mid, end, raw, ids, perm);
  nodes_[idx].right = static_cast<std::int32_t>(right);
  return idx;
}

bool DominanceTree::AnyDominates(PointView t) const {
  if (empty()) return false;
  DRLI_DCHECK(t.size() == dim_);
  return AnyDominatesAt(0, t);
}

bool DominanceTree::AnyDominatesAt(std::uint32_t idx, PointView t) const {
  const Node& node = nodes_[idx];
  const double* bmin = bounds_.data() + static_cast<std::size_t>(idx) * 2 * dim_;
  const double* bmax = bmin + dim_;
  if (!WeaklyDominates(PointView(bmin, dim_), t)) return false;
  // Max corner weakly dominating t (and != t) means every member does,
  // strictly: some coordinate of the max is strictly below t's, hence
  // strictly below in every member.
  if (WeaklyDominates(PointView(bmax, dim_), t) && !CornersEqual(bmax, t, dim_)) {
    return true;
  }
  if (node.right < 0) {
    for (std::uint32_t i = node.begin; i < node.end; ++i) {
      if (Dominates(PointView(coords_.data() + i * dim_, dim_), t)) return true;
    }
    return false;
  }
  return AnyDominatesAt(idx + 1, t) ||
         AnyDominatesAt(static_cast<std::uint32_t>(node.right), t);
}

void DominanceTree::ForEachDominator(PointView t,
                                     const std::function<void(TupleId)>& fn,
                                     DominanceTreeStats* stats) const {
  if (empty()) return;
  DRLI_DCHECK(t.size() == dim_);
  DominanceTreeStats local;
  ForEachDominatorAt(0, t, fn, &local);
  if (stats != nullptr) {
    stats->pruned += local.pruned;
    stats->tested += local.tested;
  }
}

void DominanceTree::ForEachDominatorAt(std::uint32_t idx, PointView t,
                                       const std::function<void(TupleId)>& fn,
                                       DominanceTreeStats* stats) const {
  const Node& node = nodes_[idx];
  const double* bmin = bounds_.data() + static_cast<std::size_t>(idx) * 2 * dim_;
  const double* bmax = bmin + dim_;
  if (!WeaklyDominates(PointView(bmin, dim_), t)) {
    stats->pruned += node.end - node.begin;
    return;
  }
  if (WeaklyDominates(PointView(bmax, dim_), t) && !CornersEqual(bmax, t, dim_)) {
    for (std::uint32_t i = node.begin; i < node.end; ++i) fn(ids_[i]);
    stats->tested += node.end - node.begin;
    return;
  }
  if (node.right < 0) {
    for (std::uint32_t i = node.begin; i < node.end; ++i) {
      ++stats->tested;
      if (Dominates(PointView(coords_.data() + i * dim_, dim_), t)) {
        fn(ids_[i]);
      }
    }
    return;
  }
  ForEachDominatorAt(idx + 1, t, fn, stats);
  ForEachDominatorAt(static_cast<std::uint32_t>(node.right), t, fn, stats);
}

void IncrementalDominatorSet::Add(TupleId id) {
  const PointView p = (*points_)[id];
  members_.push_back(id);
  const std::size_t tail_size = members_.size() - tree_size_;
  if ((tail_size - 1) % kTailBlock == 0) {
    tail_block_min_.insert(tail_block_min_.end(), p.begin(), p.end());
  } else {
    double* bmin = tail_block_min_.data() + (tail_block_min_.size() - dim_);
    for (std::size_t j = 0; j < dim_; ++j) {
      bmin[j] = std::min(bmin[j], p[j]);
    }
  }
  tail_coords_.insert(tail_coords_.end(), p.begin(), p.end());
  // Absorb the tail once it is a fixed fraction of the snapshot: total
  // rebuild work stays near-linearithmic per layer and the linear tail
  // scan stays short.
  if (tail_size >= std::max<std::size_t>(64, tree_size_ / 16)) {
    tree_.Build(*points_, members_);
    tree_size_ = members_.size();
    tail_coords_.clear();
    tail_block_min_.clear();
  }
}

bool IncrementalDominatorSet::AnyDominates(PointView t) const {
  if (!tree_.empty() && tree_.AnyDominates(t)) return true;
  const std::size_t tail_size = members_.size() - tree_size_;
  const std::size_t num_blocks = tail_block_min_.size() / dim_;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const double* bmin = tail_block_min_.data() + b * dim_;
    if (!WeaklyDominates(PointView(bmin, dim_), t)) continue;
    const std::size_t begin = b * kTailBlock;
    const std::size_t end = std::min(begin + kTailBlock, tail_size);
    for (std::size_t i = begin; i < end; ++i) {
      if (Dominates(PointView(tail_coords_.data() + i * dim_, dim_), t)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace drli
