#include "skyline/bskytree.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"

namespace drli {

namespace {

// Below this size a quadratic local pass beats partitioning overhead.
constexpr std::size_t kLeafSize = 24;

class SkyTreeImpl {
 public:
  explicit SkyTreeImpl(const PointSet& points)
      : points_(points), dim_(points.dim()) {
    DRLI_CHECK(dim_ <= 20) << "SkyTree region masks support d <= 20";
  }

  void Run(std::vector<TupleId> candidates, std::vector<TupleId>* out) {
    Recurse(std::move(candidates), out);
  }

 private:
  void Leaf(const std::vector<TupleId>& candidates,
            std::vector<TupleId>* out) {
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      bool dominated = false;
      for (std::size_t j = 0; j < candidates.size(); ++j) {
        if (i == j) continue;
        if (Dominates(points_[candidates[j]], points_[candidates[i]])) {
          dominated = true;
          break;
        }
      }
      if (!dominated) out->push_back(candidates[i]);
    }
  }

  // Region mask of t relative to the pivot.
  std::uint32_t MaskOf(PointView t, PointView pivot) const {
    std::uint32_t mask = 0;
    for (std::size_t j = 0; j < dim_; ++j) {
      if (t[j] >= pivot[j]) mask |= (1u << j);
    }
    return mask;
  }

  void Recurse(std::vector<TupleId> candidates, std::vector<TupleId>* out) {
    if (candidates.size() <= kLeafSize) {
      Leaf(candidates, out);
      return;
    }

    // Pivot: minimum attribute sum. Nothing can dominate it (a
    // dominator would have a strictly smaller sum), so it is a skyline
    // point of this subproblem.
    std::size_t pivot_pos = 0;
    double best_sum = 0.0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const PointView p = points_[candidates[i]];
      double s = 0.0;
      for (std::size_t j = 0; j < dim_; ++j) s += p[j];
      if (i == 0 || s < best_sum) {
        best_sum = s;
        pivot_pos = i;
      }
    }
    const TupleId pivot_id = candidates[pivot_pos];
    const PointView pivot = points_[pivot_id];
    out->push_back(pivot_id);

    const std::uint32_t full = (1u << dim_) - 1u;
    std::vector<std::uint32_t> masks_used;
    // Group candidates by region mask.
    std::vector<std::vector<TupleId>> groups(full + 1);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (i == pivot_pos) continue;
      const TupleId id = candidates[i];
      const PointView t = points_[id];
      const std::uint32_t mask = MaskOf(t, pivot);
      if (mask == full) {
        // t >= pivot in every attribute: dominated unless an exact
        // duplicate of the pivot (duplicates do not dominate each
        // other, Definition 2).
        bool equal = true;
        for (std::size_t j = 0; j < dim_; ++j) {
          if (t[j] != pivot[j]) {
            equal = false;
            break;
          }
        }
        if (equal) out->push_back(id);
        continue;
      }
      if (groups[mask].empty()) masks_used.push_back(mask);
      groups[mask].push_back(id);
    }
    candidates.clear();
    candidates.shrink_to_fit();

    std::sort(masks_used.begin(), masks_used.end(),
              [](std::uint32_t a, std::uint32_t b) {
                const int pa = __builtin_popcount(a);
                const int pb = __builtin_popcount(b);
                if (pa != pb) return pa < pb;
                return a < b;
              });

    // Skyline of each region, in lattice order; regions only filter
    // regions whose mask is a strict superset.
    std::vector<std::vector<TupleId>> region_skyline(full + 1);
    for (std::uint32_t mask : masks_used) {
      std::vector<TupleId>& group = groups[mask];
      // Filter against skylines of strict sub-masks.
      std::vector<TupleId> survivors;
      survivors.reserve(group.size());
      for (TupleId id : group) {
        const PointView t = points_[id];
        bool dominated = false;
        // Enumerate strict non-empty sub-masks of `mask`, plus mask 0.
        for (std::uint32_t sub = (mask - 1) & mask;; sub = (sub - 1) & mask) {
          for (TupleId s : region_skyline[sub]) {
            if (Dominates(points_[s], t)) {
              dominated = true;
              break;
            }
          }
          if (dominated || sub == 0) break;
        }
        if (!dominated) survivors.push_back(id);
      }
      group.clear();
      group.shrink_to_fit();

      std::vector<TupleId> sky;
      Recurse(std::move(survivors), &sky);
      for (TupleId id : sky) out->push_back(id);
      region_skyline[mask] = std::move(sky);
    }
  }

  const PointSet& points_;
  std::size_t dim_;
};

}  // namespace

std::vector<TupleId> SkyTreeSkyline(const PointSet& points,
                                    const std::vector<TupleId>& candidates) {
  std::vector<TupleId> out;
  if (candidates.empty()) return out;
  SkyTreeImpl impl(points);
  impl.Run(candidates, &out);
  return out;
}

}  // namespace drli
