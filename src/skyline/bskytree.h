// SkyTree/BSkyTree-style skyline computation (Lee & Hwang, EDBT'10):
// recursive pivot-based space partitioning with lattice-level
// incomparability pruning. This is the algorithm family the paper uses
// to build coarse layers ("we employed the state-of-the-art skyline
// algorithm BSkyTree").
//
// Sketch: the minimum-attribute-sum point is chosen as the pivot (it is
// always a skyline point). Every other point maps to a d-bit region mask
// (bit i set iff t_i >= pivot_i). Points with the all-ones mask are
// dominated by the pivot and dropped. A point in region B can only be
// dominated by points in regions A with A ⊆ B (bitwise), so regions are
// processed in ascending mask order, each filtered against the skylines
// of its sub-regions and then reduced recursively.

#ifndef DRLI_SKYLINE_BSKYTREE_H_
#define DRLI_SKYLINE_BSKYTREE_H_

#include <vector>

#include "common/point.h"

namespace drli {

// Returns the skyline of `candidates` (ids into `points`), unsorted.
std::vector<TupleId> SkyTreeSkyline(const PointSet& points,
                                    const std::vector<TupleId>& candidates);

}  // namespace drli

#endif  // DRLI_SKYLINE_BSKYTREE_H_
