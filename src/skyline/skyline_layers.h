// Layer decompositions used by every index in the library:
//
//  * skyline layers (iterated skylines) -- the coarse level of the
//    dual-resolution index and the layers of the Dominant Graph;
//  * convex layers (iterated convex skylines) -- the layers of Onion
//    and the Hybrid-Layer index.
//
// Convex-layer peeling exploits CSKY(S) = CSKY(SKY(S)): each iteration
// first reduces the remaining set to its skyline (cheap, SkyTree) and
// only runs the hull machinery on that reduced set.

#ifndef DRLI_SKYLINE_SKYLINE_LAYERS_H_
#define DRLI_SKYLINE_SKYLINE_LAYERS_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "common/point.h"
#include "skyline/skyline.h"

namespace drli {

struct LayerDecomposition {
  // layers[i] = ids (into the input PointSet) of layer i+1, ascending.
  std::vector<std::vector<TupleId>> layers;
  // layer_of[id] = 0-based layer index of the tuple; every tuple is
  // assigned (one-to-one mapping, Section II).
  std::vector<std::size_t> layer_of;
};

// Iterated skylines: layer 1 = SKY(R), layer i = SKY(R - earlier).
LayerDecomposition BuildSkylineLayers(
    const PointSet& points,
    SkylineAlgorithm algorithm = SkylineAlgorithm::kSkyTree);

// Iterated convex skylines (Onion layers): layer 1 = CSKY(R), layer i =
// CSKY(R - earlier). When `max_layers` peels have been produced and
// tuples remain, the remainder becomes one final complete-access layer
// and `truncated` is set; queries with k <= max_layers never reach it.
struct ConvexLayerDecomposition {
  std::vector<std::vector<TupleId>> layers;
  std::vector<std::size_t> layer_of;
  bool truncated = false;
};

ConvexLayerDecomposition BuildConvexLayers(
    const PointSet& points,
    std::size_t max_layers = std::numeric_limits<std::size_t>::max(),
    SkylineAlgorithm algorithm = SkylineAlgorithm::kSkyTree);

// Invokes edge(t, t') for every pair t in `upper`, t' in `lower` with
// t ≺ t'. Used to wire ∀-dominance edges between adjacent layers; sorts
// `upper` by attribute sum so each scan stops early (a dominator always
// has a strictly smaller sum).
void ForEachDominancePair(
    const PointSet& points, const std::vector<TupleId>& upper,
    const std::vector<TupleId>& lower,
    const std::function<void(TupleId source, TupleId target)>& edge);

}  // namespace drli

#endif  // DRLI_SKYLINE_SKYLINE_LAYERS_H_
