// Layer decompositions used by every index in the library:
//
//  * skyline layers (iterated skylines) -- the coarse level of the
//    dual-resolution index and the layers of the Dominant Graph;
//  * convex layers (iterated convex skylines) -- the layers of Onion
//    and the Hybrid-Layer index.
//
// Convex-layer peeling exploits CSKY(S) = CSKY(SKY(S)): each iteration
// first reduces the remaining set to its skyline (cheap, SkyTree) and
// only runs the hull machinery on that reduced set.

#ifndef DRLI_SKYLINE_SKYLINE_LAYERS_H_
#define DRLI_SKYLINE_SKYLINE_LAYERS_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "common/point.h"
#include "skyline/skyline.h"

namespace drli {

struct LayerDecomposition {
  // layers[i] = ids (into the input PointSet) of layer i+1, ascending.
  std::vector<std::vector<TupleId>> layers;
  // layer_of[id] = 0-based layer index of the tuple; every tuple is
  // assigned (one-to-one mapping, Section II).
  std::vector<std::size_t> layer_of;
};

// Iterated skylines: layer 1 = SKY(R), layer i = SKY(R - earlier).
//
// Computed in a single pass rather than by repeated skyline peels:
// points are processed in ascending attribute-sum order (every
// dominator of a point strictly precedes it), and each point's layer
// is 1 + the deepest layer holding one of its dominators. Because
// dominance is transitive, "some member of layer ℓ dominates p" is
// downward closed in ℓ, so that layer is found by binary search over
// the layers built so far. The decomposition is unique, so the result
// is identical to peeling; `algorithm` is kept for call-site
// compatibility (it selected the per-peel skyline subroutine, which
// the single-pass build no longer runs).
LayerDecomposition BuildSkylineLayers(
    const PointSet& points,
    SkylineAlgorithm algorithm = SkylineAlgorithm::kSkyTree);

// Reference implementation: repeated ComputeSkylineOfSubset peels with
// `algorithm`. Same output as BuildSkylineLayers on every input (the
// decomposition is unique); kept for equivalence tests and ablations.
LayerDecomposition BuildSkylineLayersByPeeling(
    const PointSet& points,
    SkylineAlgorithm algorithm = SkylineAlgorithm::kSkyTree);

// Iterated convex skylines (Onion layers): layer 1 = CSKY(R), layer i =
// CSKY(R - earlier). When `max_layers` peels have been produced and
// tuples remain, the remainder becomes one final complete-access layer
// and `truncated` is set; queries with k <= max_layers never reach it.
struct ConvexLayerDecomposition {
  std::vector<std::vector<TupleId>> layers;
  std::vector<std::size_t> layer_of;
  bool truncated = false;
};

ConvexLayerDecomposition BuildConvexLayers(
    const PointSet& points,
    std::size_t max_layers = std::numeric_limits<std::size_t>::max(),
    SkylineAlgorithm algorithm = SkylineAlgorithm::kSkyTree);

// Pruning effectiveness counters for ForEachDominancePair. Every
// candidate (source, target) pair lands in exactly one bucket, so
// pairs_pruned + pairs_tested == |upper| * |lower|.
struct DominancePairStats {
  // Pairs skipped wholesale because a subtree bound ruled them out.
  std::size_t pairs_pruned = 0;
  // Pairs resolved individually or by a whole-subtree accept.
  std::size_t pairs_tested = 0;
};

// Invokes edge(t, t') for every pair t in `upper`, t' in `lower` with
// t ≺ t'. Used to wire ∀-dominance edges between adjacent layers.
//
// Bounds-tree scan: `upper` is indexed by a kd-style tree whose nodes
// carry componentwise min/max corners (DominanceTree); per target, a
// subtree whose min corner fails to weakly dominate the target is
// skipped in O(d) and a subtree whose max corner weakly dominates it
// is accepted wholesale. Targets are visited in the given `lower`
// order; the per-target source order is the tree's deterministic
// preorder (callers must not rely on a particular source order).
// `stats` (optional) accumulates pruning counters.
void ForEachDominancePair(
    const PointSet& points, const std::vector<TupleId>& upper,
    const std::vector<TupleId>& lower,
    const std::function<void(TupleId source, TupleId target)>& edge,
    DominancePairStats* stats = nullptr);

}  // namespace drli

#endif  // DRLI_SKYLINE_SKYLINE_LAYERS_H_
