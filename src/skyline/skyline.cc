#include "skyline/skyline.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/check.h"
#include "common/kernels_batch.h"
#include "common/soa_points.h"
#include "skyline/bskytree.h"

namespace drli {

namespace {

// Candidate sets at or above this size pay for a compact dimension-major
// copy (SoaPointSet::FromSubset) so the dominance sweep runs through
// DominatesAnyBatch; below it the scalar short-circuit loop wins. BNL is
// excluded: its window pass needs the bidirectional test with eviction,
// which is not the any-dominates shape the batch kernel implements.
constexpr std::size_t kBatchSweepThreshold = 32;

std::vector<TupleId> NaiveSkyline(const PointSet& points,
                                  const std::vector<TupleId>& candidates) {
  std::vector<TupleId> out;
  if (candidates.size() >= kBatchSweepThreshold) {
    // Strict dominance is irreflexive, so probing the whole set --
    // including `a` itself -- gives the same verdict as the skip-self
    // scalar loop.
    const SoaPointSet soa = SoaPointSet::FromSubset(points, candidates);
    std::vector<std::uint32_t> rows(candidates.size());
    std::iota(rows.begin(), rows.end(), 0u);
    for (TupleId a : candidates) {
      if (!DominatesAnyBatch(soa, rows.data(), rows.size(), points[a])) {
        out.push_back(a);
      }
    }
    return out;
  }
  for (TupleId a : candidates) {
    bool dominated = false;
    for (TupleId b : candidates) {
      if (a == b) continue;
      if (Dominates(points[b], points[a])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(a);
  }
  return out;
}

// Block-nested-loops (Börzsönyi et al.): stream candidates against a
// bounded self-organizing window; window overflow spills to the next
// pass. A window entry is certified as skyline at the end of a pass iff
// it was inserted before the first spill (it has then been compared,
// directly or transitively, against every other candidate).
std::vector<TupleId> BnlSkyline(const PointSet& points,
                                std::vector<TupleId> candidates,
                                std::size_t window_capacity) {
  struct WindowEntry {
    TupleId id;
    std::size_t inserted_at;  // input position when inserted
  };
  std::vector<TupleId> skyline;
  std::vector<TupleId> input = std::move(candidates);
  while (!input.empty()) {
    std::vector<WindowEntry> window;
    window.reserve(std::min(window_capacity, input.size()));
    std::vector<TupleId> overflow;
    std::size_t first_overflow = input.size();
    for (std::size_t pos = 0; pos < input.size(); ++pos) {
      const TupleId id = input[pos];
      const PointView p = points[id];
      bool dominated = false;
      for (std::size_t w = 0; w < window.size();) {
        const PointView q = points[window[w].id];
        if (Dominates(q, p)) {
          dominated = true;
          break;
        }
        if (Dominates(p, q)) {
          // Evict: the newcomer supersedes this entry.
          window[w] = window.back();
          window.pop_back();
          continue;
        }
        ++w;
      }
      if (dominated) continue;
      if (window.size() < window_capacity) {
        window.push_back(WindowEntry{id, pos});
      } else {
        if (first_overflow == input.size()) first_overflow = pos;
        overflow.push_back(id);
      }
    }
    std::vector<TupleId> next;
    for (const WindowEntry& entry : window) {
      if (entry.inserted_at < first_overflow) {
        skyline.push_back(entry.id);
      } else {
        next.push_back(entry.id);
      }
    }
    next.insert(next.end(), overflow.begin(), overflow.end());
    input = std::move(next);
  }
  return skyline;
}

// Divide & conquer (Börzsönyi et al.): median-split on the widest
// attribute, solve halves, then mutually filter the partial skylines.
// The mutual filter is the simple quadratic merge; the asymptotically
// better recursive merge is not needed at the library's layer sizes.
class DivideAndConquerSkyline {
 public:
  explicit DivideAndConquerSkyline(const PointSet& points)
      : points_(points) {}

  std::vector<TupleId> Run(std::vector<TupleId> candidates) {
    if (candidates.size() <= kLeaf) return NaiveSkyline(points_, candidates);
    const std::size_t axis = WidestAxis(candidates);
    const PointView lo = points_[candidates.front()];
    double lo_v = lo[axis], hi_v = lo_v;
    for (TupleId id : candidates) {
      lo_v = std::min(lo_v, points_[id][axis]);
      hi_v = std::max(hi_v, points_[id][axis]);
    }
    if (hi_v - lo_v <= 0.0) {
      // No split possible on any axis: the set is degenerate; fall
      // back to the quadratic scan.
      return NaiveSkyline(points_, candidates);
    }
    // Median split by value on the widest axis.
    std::nth_element(candidates.begin(),
                     candidates.begin() + candidates.size() / 2,
                     candidates.end(), [&](TupleId a, TupleId b) {
                       if (points_[a][axis] != points_[b][axis]) {
                         return points_[a][axis] < points_[b][axis];
                       }
                       return a < b;
                     });
    std::vector<TupleId> low(candidates.begin(),
                             candidates.begin() + candidates.size() / 2);
    std::vector<TupleId> high(candidates.begin() + candidates.size() / 2,
                              candidates.end());
    const std::vector<TupleId> sky_low = Run(std::move(low));
    const std::vector<TupleId> sky_high = Run(std::move(high));

    // Mutual merge filter: keep the survivors of each side against the
    // other. (Points with equal split values can sit on either side,
    // so both directions must be checked.)
    std::vector<TupleId> merged;
    merged.reserve(sky_low.size() + sky_high.size());
    FilterAgainst(sky_low, sky_high, &merged);
    FilterAgainst(sky_high, sky_low, &merged);
    return merged;
  }

 private:
  static constexpr std::size_t kLeaf = 32;

  bool DominatedByAny(TupleId id, const std::vector<TupleId>& others) const {
    const PointView p = points_[id];
    for (TupleId other : others) {
      if (Dominates(points_[other], p)) return true;
    }
    return false;
  }

  // Appends the members of `ids` not dominated by any member of
  // `others`. Large filter sets sweep through the batch kernel over a
  // compact SoA of `others`, built once per merge.
  void FilterAgainst(const std::vector<TupleId>& ids,
                     const std::vector<TupleId>& others,
                     std::vector<TupleId>* out) const {
    if (others.size() >= kBatchSweepThreshold) {
      const SoaPointSet soa = SoaPointSet::FromSubset(points_, others);
      std::vector<std::uint32_t> rows(others.size());
      std::iota(rows.begin(), rows.end(), 0u);
      for (TupleId id : ids) {
        if (!DominatesAnyBatch(soa, rows.data(), rows.size(), points_[id])) {
          out->push_back(id);
        }
      }
      return;
    }
    for (TupleId id : ids) {
      if (!DominatedByAny(id, others)) out->push_back(id);
    }
  }

  std::size_t WidestAxis(const std::vector<TupleId>& candidates) const {
    const std::size_t d = points_.dim();
    std::size_t best_axis = 0;
    double best_spread = -1.0;
    for (std::size_t axis = 0; axis < d; ++axis) {
      double lo = points_[candidates[0]][axis], hi = lo;
      for (TupleId id : candidates) {
        lo = std::min(lo, points_[id][axis]);
        hi = std::max(hi, points_[id][axis]);
      }
      if (hi - lo > best_spread) {
        best_spread = hi - lo;
        best_axis = axis;
      }
    }
    return best_axis;
  }

  const PointSet& points_;
};

std::vector<TupleId> SfsSkyline(const PointSet& points,
                                std::vector<TupleId> candidates) {
  // Sort by attribute sum: a dominator always has a strictly smaller
  // sum, so each point needs comparing only against the window of
  // already-accepted skyline points.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](TupleId a, TupleId b) {
                     double sa = 0.0, sb = 0.0;
                     const PointView pa = points[a], pb = points[b];
                     for (std::size_t j = 0; j < points.dim(); ++j) {
                       sa += pa[j];
                       sb += pb[j];
                     }
                     if (sa != sb) return sa < sb;
                     return a < b;
                   });
  if (candidates.size() >= kBatchSweepThreshold) {
    // The window only ever grows, so it can be kept as row positions
    // into a compact SoA of the sorted candidates and swept with the
    // batch kernel; accepted ids are the same in the same order.
    const SoaPointSet soa = SoaPointSet::FromSubset(points, candidates);
    std::vector<std::uint32_t> window_rows;
    std::vector<TupleId> window;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (!DominatesAnyBatch(soa, window_rows.data(), window_rows.size(),
                             points[candidates[i]])) {
        window_rows.push_back(static_cast<std::uint32_t>(i));
        window.push_back(candidates[i]);
      }
    }
    std::sort(window.begin(), window.end());
    return window;
  }
  std::vector<TupleId> window;
  for (TupleId id : candidates) {
    const PointView p = points[id];
    bool dominated = false;
    for (TupleId s : window) {
      if (Dominates(points[s], p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) window.push_back(id);
  }
  std::sort(window.begin(), window.end());
  return window;
}

constexpr std::size_t kBnlWindowCapacity = 512;

}  // namespace

const char* SkylineAlgorithmName(SkylineAlgorithm algorithm) {
  switch (algorithm) {
    case SkylineAlgorithm::kNaive:
      return "naive";
    case SkylineAlgorithm::kBnl:
      return "bnl";
    case SkylineAlgorithm::kSfs:
      return "sfs";
    case SkylineAlgorithm::kDivideAndConquer:
      return "dnc";
    case SkylineAlgorithm::kSkyTree:
      return "skytree";
  }
  return "unknown";
}

std::vector<TupleId> ComputeSkylineOfSubset(const PointSet& points,
                                            const std::vector<TupleId>& candidates,
                                            SkylineAlgorithm algorithm) {
  std::vector<TupleId> result;
  switch (algorithm) {
    case SkylineAlgorithm::kNaive:
      result = NaiveSkyline(points, candidates);
      break;
    case SkylineAlgorithm::kBnl:
      result = BnlSkyline(points, candidates, kBnlWindowCapacity);
      break;
    case SkylineAlgorithm::kSfs:
      result = SfsSkyline(points, candidates);
      break;
    case SkylineAlgorithm::kDivideAndConquer:
      result = DivideAndConquerSkyline(points).Run(candidates);
      break;
    case SkylineAlgorithm::kSkyTree:
      result = SkyTreeSkyline(points, candidates);
      break;
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<TupleId> ComputeSkyline(const PointSet& points,
                                    SkylineAlgorithm algorithm) {
  std::vector<TupleId> all(points.size());
  std::iota(all.begin(), all.end(), 0);
  return ComputeSkylineOfSubset(points, all, algorithm);
}

}  // namespace drli
