// Static kd-style bounds tree over a point subset, answering dominance
// queries against it:
//
//  * AnyDominates(t)    -- does some member strictly dominate t?
//  * ForEachDominators  -- report every member strictly dominating t.
//
// Nodes store the componentwise min and max corner of their subtree. A
// subtree whose min corner fails to weakly dominate the target cannot
// contain a dominator and is skipped in O(d); a subtree whose max
// corner weakly dominates the target (and differs from it) consists
// entirely of dominators and is accepted wholesale. Splits are median
// by (coordinate, id) on the widest axis, so the tree shape -- and
// with it every count reported through DominanceTreeStats -- is a
// deterministic function of the input set.
//
// The tree copies the member coordinates into a contiguous buffer; it
// does not keep a reference to the PointSet it was built from.

#ifndef DRLI_SKYLINE_DOMINANCE_TREE_H_
#define DRLI_SKYLINE_DOMINANCE_TREE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/point.h"

namespace drli {

// Pruning counters for ForEachDominator. Every (member, target) pair
// of a query lands in exactly one bucket, so over a query
// pruned + tested == size().
struct DominanceTreeStats {
  // Pairs skipped wholesale because a subtree bound ruled them out.
  std::size_t pruned = 0;
  // Pairs resolved individually or by a whole-subtree accept.
  std::size_t tested = 0;
};

class DominanceTree {
 public:
  DominanceTree() = default;

  // Rebuilds the tree over points[ids[i]]. The ids must be distinct.
  void Build(const PointSet& points, const std::vector<TupleId>& ids);

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  // True when some member strictly dominates t.
  bool AnyDominates(PointView t) const;

  // Invokes fn(id) for every member strictly dominating t. The
  // reporting order is the tree's deterministic preorder, not id
  // order. `stats` (optional) accumulates pruning counters.
  void ForEachDominator(PointView t, const std::function<void(TupleId)>& fn,
                        DominanceTreeStats* stats = nullptr) const;

 private:
  struct Node {
    std::uint32_t begin = 0;  // member range [begin, end) in ids_/coords_
    std::uint32_t end = 0;
    std::int32_t right = -1;  // -1: leaf; left child is always self + 1
  };

  std::uint32_t BuildNode(std::uint32_t begin, std::uint32_t end,
                          const std::vector<double>& raw,
                          const std::vector<TupleId>& ids,
                          std::vector<std::uint32_t>* perm);
  bool AnyDominatesAt(std::uint32_t idx, PointView t) const;
  void ForEachDominatorAt(std::uint32_t idx, PointView t,
                          const std::function<void(TupleId)>& fn,
                          DominanceTreeStats* stats) const;

  std::size_t dim_ = 0;
  std::vector<Node> nodes_;      // preorder
  std::vector<double> bounds_;   // per node: min corner then max corner
  std::vector<TupleId> ids_;     // members, grouped so leaves are contiguous
  std::vector<double> coords_;   // ids_.size() * dim_, aligned with ids_
};

// Append-only set of points over a fixed PointSet answering
// AnyDominates, used by the single-pass skyline layering. Internally a
// DominanceTree over a snapshot of the members plus a small linear
// tail of recent inserts; the tree is rebuilt (absorbing the tail)
// once the tail exceeds a fixed fraction of the snapshot, so rebuild
// work stays O(m log^2 m) per layer while queries mostly hit the tree.
class IncrementalDominatorSet {
 public:
  explicit IncrementalDominatorSet(const PointSet& points)
      : points_(&points), dim_(points.dim()) {}

  std::size_t size() const { return members_.size(); }

  void Add(TupleId id);
  bool AnyDominates(PointView t) const;

 private:
  const PointSet* points_;
  std::size_t dim_;
  std::vector<TupleId> members_;  // tree snapshot prefix, then the tail
  std::size_t tree_size_ = 0;     // members_[0, tree_size_) are in tree_
  DominanceTree tree_;
  // Tail coordinates, contiguous, with a componentwise-min corner per
  // block of kTailBlock members for O(d) block rejection.
  std::vector<double> tail_coords_;
  std::vector<double> tail_block_min_;
};

}  // namespace drli

#endif  // DRLI_SKYLINE_DOMINANCE_TREE_H_
