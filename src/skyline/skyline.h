// Skyline computation (Definition 3). Five interchangeable algorithms:
//
//  * kNaive    -- O(n^2) pairwise reference implementation (tests).
//  * kBnl      -- block-nested-loops with a bounded in-memory window
//                 (Börzsönyi et al., ICDE'01).
//  * kSfs      -- sort-filter-skyline: entropy-sorted scan against the
//                 running skyline window (Chomicki et al.).
//  * kDivideAndConquer -- median-split D&C with pairwise merge
//                 filtering (Börzsönyi et al.).
//  * kSkyTree  -- pivot-based space partitioning with region-level
//                 incomparability pruning, our implementation of the
//                 BSkyTree family the paper uses for layer construction
//                 (Lee & Hwang, EDBT'10).
//
// All return the identical set (the skyline is unique); they only
// differ in cost. Returned ids are indices into the input PointSet, in
// ascending order.

#ifndef DRLI_SKYLINE_SKYLINE_H_
#define DRLI_SKYLINE_SKYLINE_H_

#include <vector>

#include "common/point.h"

namespace drli {

enum class SkylineAlgorithm {
  kNaive,
  kBnl,
  kSfs,
  kDivideAndConquer,
  kSkyTree,
};

// Short lowercase name, e.g. "skytree".
const char* SkylineAlgorithmName(SkylineAlgorithm algorithm);

// Computes SKY(points). Duplicated points: the copy with the smallest id
// is kept (duplicates do not dominate each other per Definition 2, so
// all exact duplicates of a skyline point are skyline points and all are
// returned).
std::vector<TupleId> ComputeSkyline(
    const PointSet& points,
    SkylineAlgorithm algorithm = SkylineAlgorithm::kSkyTree);

// Computes the skyline of the subset `candidates` (ids into `points`),
// returning surviving ids in ascending order.
std::vector<TupleId> ComputeSkylineOfSubset(
    const PointSet& points, const std::vector<TupleId>& candidates,
    SkylineAlgorithm algorithm = SkylineAlgorithm::kSkyTree);

}  // namespace drli

#endif  // DRLI_SKYLINE_SKYLINE_H_
