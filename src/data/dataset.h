// A relation for top-k querying: a PointSet plus attribute metadata and
// preprocessing helpers (min-max normalization, direction flips). All
// indexes in the library assume minimization over [0,1]^d (Section II);
// Dataset is where raw application data is massaged into that form.

#ifndef DRLI_DATA_DATASET_H_
#define DRLI_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/point.h"

namespace drli {

class Dataset {
 public:
  // An empty relation with the given attribute names (d = names size).
  explicit Dataset(std::vector<std::string> attribute_names);
  // Wraps an existing PointSet with generic names "a0", "a1", ...
  explicit Dataset(PointSet points);
  Dataset(PointSet points, std::vector<std::string> attribute_names);

  std::size_t dim() const { return points_.dim(); }
  std::size_t size() const { return points_.size(); }
  const PointSet& points() const { return points_; }
  PointSet& mutable_points() { return points_; }
  const std::vector<std::string>& attribute_names() const { return names_; }

  // Index of the named attribute, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t AttributeIndex(const std::string& name) const;

  // Rescales every attribute to [0, 1] by min-max normalization.
  // Constant attributes map to 0.
  void NormalizeMinMax();

  // Replaces attribute `attr` by (max - value): use for attributes
  // where larger raw values are better (e.g. a hotel rating), since the
  // library minimizes.
  void InvertAttribute(std::size_t attr);

 private:
  PointSet points_;
  std::vector<std::string> names_;
};

}  // namespace drli

#endif  // DRLI_DATA_DATASET_H_
