#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace drli {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) {
    // Trim surrounding whitespace.
    std::size_t b = field.find_first_not_of(" \t\r");
    std::size_t e = field.find_last_not_of(" \t\r");
    fields.push_back(b == std::string::npos
                         ? std::string()
                         : field.substr(b, e - b + 1));
  }
  if (!line.empty() && line.back() == ',') fields.push_back("");
  return fields;
}

}  // namespace

StatusOr<Dataset> ParseCsv(const std::string& content) {
  std::stringstream ss(content);
  std::string line;
  if (!std::getline(ss, line)) {
    return Status::InvalidArgument("empty CSV input");
  }
  std::vector<std::string> names = SplitCsvLine(line);
  if (names.empty()) {
    return Status::InvalidArgument("CSV header has no columns");
  }
  Dataset dataset(names);
  Point row(names.size());
  std::size_t line_no = 1;
  while (std::getline(ss, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != names.size()) {
      return Status::Corruption("line " + std::to_string(line_no) + ": got " +
                                std::to_string(fields.size()) +
                                " fields, expected " +
                                std::to_string(names.size()));
    }
    for (std::size_t j = 0; j < fields.size(); ++j) {
      char* end = nullptr;
      row[j] = std::strtod(fields[j].c_str(), &end);
      if (end == fields[j].c_str() || *end != '\0') {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": non-numeric field '" + fields[j] + "'");
      }
    }
    dataset.mutable_points().Add(row);
  }
  return dataset;
}

StatusOr<Dataset> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

Status SaveCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  const auto& names = dataset.attribute_names();
  for (std::size_t j = 0; j < names.size(); ++j) {
    if (j) out << ',';
    out << names[j];
  }
  out << '\n';
  char buf[64];
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    for (std::size_t j = 0; j < dataset.dim(); ++j) {
      if (j) out << ',';
      std::snprintf(buf, sizeof(buf), "%.17g", dataset.points().At(i, j));
      out << buf;
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failure on " + path);
  return Status::Ok();
}

}  // namespace drli
