#include "data/dataset.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace drli {

namespace {

std::vector<std::string> GenericNames(std::size_t d) {
  std::vector<std::string> names;
  names.reserve(d);
  for (std::size_t i = 0; i < d; ++i) {
    names.push_back("a" + std::to_string(i));
  }
  return names;
}

}  // namespace

Dataset::Dataset(std::vector<std::string> attribute_names)
    : points_(attribute_names.empty() ? 1 : attribute_names.size()),
      names_(std::move(attribute_names)) {
  DRLI_CHECK(!names_.empty()) << "Dataset needs at least one attribute";
}

Dataset::Dataset(PointSet points)
    : points_(std::move(points)), names_(GenericNames(points_.dim())) {}

Dataset::Dataset(PointSet points, std::vector<std::string> attribute_names)
    : points_(std::move(points)), names_(std::move(attribute_names)) {
  DRLI_CHECK_EQ(names_.size(), points_.dim());
}

std::size_t Dataset::AttributeIndex(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return npos;
}

void Dataset::NormalizeMinMax() {
  const std::size_t d = dim();
  const std::size_t n = size();
  if (n == 0) return;
  std::vector<double> lo(d, std::numeric_limits<double>::infinity());
  std::vector<double> hi(d, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      lo[j] = std::min(lo[j], points_.At(i, j));
      hi[j] = std::max(hi[j], points_.At(i, j));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const double range = hi[j] - lo[j];
      const double v = range > 0 ? (points_.At(i, j) - lo[j]) / range : 0.0;
      points_.Set(i, j, v);
    }
  }
}

void Dataset::InvertAttribute(std::size_t attr) {
  DRLI_CHECK_LT(attr, dim());
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < size(); ++i) {
    hi = std::max(hi, points_.At(i, attr));
  }
  for (std::size_t i = 0; i < size(); ++i) {
    points_.Set(i, attr, hi - points_.At(i, attr));
  }
}

}  // namespace drli
