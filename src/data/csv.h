// CSV import/export for Dataset: a header row of attribute names
// followed by one numeric row per tuple. Used by the example programs.

#ifndef DRLI_DATA_CSV_H_
#define DRLI_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace drli {

// Parses a CSV file with header. Non-numeric columns are rejected.
StatusOr<Dataset> LoadCsv(const std::string& path);

// Parses CSV from an in-memory string (same format).
StatusOr<Dataset> ParseCsv(const std::string& content);

// Writes `dataset` to `path`.
Status SaveCsv(const Dataset& dataset, const std::string& path);

}  // namespace drli

#endif  // DRLI_DATA_CSV_H_
