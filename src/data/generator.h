// Synthetic dataset generators following the data generation
// instructions of Börzsönyi et al. (ICDE'01), as used in Section VI-A:
// independent (IND) and anti-correlated (ANT); correlated (COR) is
// included as an extension. All attribute values lie in (0, 1).

#ifndef DRLI_DATA_GENERATOR_H_
#define DRLI_DATA_GENERATOR_H_

#include <cstdint>

#include "common/point.h"

namespace drli {

enum class Distribution {
  kIndependent,
  kAnticorrelated,
  kCorrelated,
};

// Short lowercase name: "ind", "ant", "cor".
const char* DistributionName(Distribution dist);

// Generates n points of dimensionality d, deterministically from seed.
PointSet GenerateIndependent(std::size_t n, std::size_t d,
                             std::uint64_t seed);

// Points clustered around the hyperplane sum(x) = d/2: good in one
// attribute means bad in another, which inflates skylines and layer
// cardinalities (the paper's hard case).
PointSet GenerateAnticorrelated(std::size_t n, std::size_t d,
                                std::uint64_t seed);

// Points clustered around the diagonal x_1 = ... = x_d.
PointSet GenerateCorrelated(std::size_t n, std::size_t d,
                            std::uint64_t seed);

PointSet Generate(Distribution dist, std::size_t n, std::size_t d,
                  std::uint64_t seed);

}  // namespace drli

#endif  // DRLI_DATA_GENERATOR_H_
