#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"

namespace drli {

namespace {

constexpr double kMargin = 1e-6;  // keeps values strictly inside (0, 1)

double Clamp01(double x) {
  return std::min(1.0 - kMargin, std::max(kMargin, x));
}

// Truncated normal in (0, 1).
double TruncatedGaussian(Rng& rng, double mean, double stddev) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double v = rng.Gaussian(mean, stddev);
    if (v > kMargin && v < 1.0 - kMargin) return v;
  }
  return Clamp01(mean);
}

}  // namespace

const char* DistributionName(Distribution dist) {
  switch (dist) {
    case Distribution::kIndependent:
      return "ind";
    case Distribution::kAnticorrelated:
      return "ant";
    case Distribution::kCorrelated:
      return "cor";
  }
  return "unknown";
}

PointSet GenerateIndependent(std::size_t n, std::size_t d,
                             std::uint64_t seed) {
  Rng rng(seed);
  PointSet out(d);
  out.Reserve(n);
  Point p(d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) p[j] = rng.Uniform(kMargin, 1.0);
    out.Add(p);
  }
  return out;
}

PointSet GenerateAnticorrelated(std::size_t n, std::size_t d,
                                std::uint64_t seed) {
  // Börzsönyi et al.-style anti-correlation: every point lies close to
  // an anti-diagonal hyperplane sum(x) = d * v with v ~ N(0.5, 0.05).
  // A uniform cube sample is projected onto the plane (rejecting draws
  // that leave the cube), so good values in one attribute come with bad
  // values in others -- the pairwise correlation is strongly negative
  // and skylines/layers blow up, the paper's hard case.
  Rng rng(seed);
  PointSet out(d);
  out.Reserve(n);
  Point p(d);
  for (std::size_t i = 0; i < n; ++i) {
    bool accepted = false;
    for (int attempt = 0; attempt < 128 && !accepted; ++attempt) {
      const double v = TruncatedGaussian(rng, 0.5, 0.05);
      double sum = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        p[j] = rng.Uniform(0.0, 1.0);
        sum += p[j];
      }
      const double shift = (d * v - sum) / static_cast<double>(d);
      accepted = true;
      for (std::size_t j = 0; j < d; ++j) {
        p[j] += shift;
        if (p[j] <= kMargin || p[j] >= 1.0 - kMargin) accepted = false;
      }
    }
    if (!accepted) {
      for (double& x : p) x = Clamp01(x);
    }
    out.Add(p);
  }
  return out;
}

PointSet GenerateCorrelated(std::size_t n, std::size_t d,
                            std::uint64_t seed) {
  Rng rng(seed);
  PointSet out(d);
  out.Reserve(n);
  Point p(d);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = TruncatedGaussian(rng, 0.5, 0.25);
    for (std::size_t j = 0; j < d; ++j) {
      p[j] = Clamp01(v + rng.Gaussian(0.0, 0.05));
    }
    out.Add(p);
  }
  return out;
}

PointSet Generate(Distribution dist, std::size_t n, std::size_t d,
                  std::uint64_t seed) {
  switch (dist) {
    case Distribution::kIndependent:
      return GenerateIndependent(n, d, seed);
    case Distribution::kAnticorrelated:
      return GenerateAnticorrelated(n, d, seed);
    case Distribution::kCorrelated:
      return GenerateCorrelated(n, d, seed);
  }
  DRLI_CHECK(false) << "unreachable";
  return PointSet(d);
}

}  // namespace drli
