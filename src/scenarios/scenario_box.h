// Attribute-range constraint boxes for the constrained top-k scenario
// (scenarios/constrained.h). A box is an axis-aligned, inclusive
// rectangle over the relation's attribute space; the constrained
// traversal prunes whole sublayers / runs / shards whose bounding box
// does not intersect it.

#ifndef DRLI_SCENARIOS_SCENARIO_BOX_H_
#define DRLI_SCENARIOS_SCENARIO_BOX_H_

#include <cstddef>

#include "common/point.h"
#include "common/status.h"

namespace drli {

// [lo[a], hi[a]] per attribute, both ends inclusive -- a tuple sitting
// exactly on a box edge qualifies (the FP boundary-tie convention every
// engine and the brute-force reference share). lo[a] > hi[a] makes the
// box empty; +-infinity endpoints express half-open / unconstrained
// sides. NaN endpoints are rejected by ValidateBox.
struct AttributeBox {
  Point lo;
  Point hi;

  std::size_t dim() const { return lo.size(); }

  // The all-space box: every attribute unconstrained.
  static AttributeBox All(std::size_t d);

  // Inclusive containment of a tuple.
  bool Contains(PointView p) const;

  // Does this box intersect the (inclusive) box [other_lo, other_hi]?
  // Used against sublayer / run / shard bounding boxes; a miss proves
  // no member can satisfy the constraint.
  bool Intersects(PointView other_lo, PointView other_hi) const;
};

// |lo| == |hi| == dim, no NaN endpoints. Inverted (empty) boxes are
// legal -- they simply match nothing.
Status ValidateBox(const AttributeBox& box, std::size_t dim);

}  // namespace drli

#endif  // DRLI_SCENARIOS_SCENARIO_BOX_H_
