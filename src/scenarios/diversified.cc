#include "scenarios/diversified.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/stopwatch.h"

namespace drli {
namespace {

Status ValidateDiversified(const DiversifiedQuery& query, std::size_t dim) {
  TopKQuery base;
  base.weights = query.weights;
  base.k = query.k;
  if (Status status = ValidateQuery(base, dim); !status.ok()) return status;
  if (!std::isfinite(query.lambda) || query.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be finite and non-negative");
  }
  if (query.pool_factor < 1) {
    return Status::InvalidArgument("pool_factor must be >= 1");
  }
  return Status::Ok();
}

double Similarity(PointView a, PointView b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return 1.0 / (1.0 + std::sqrt(sum));
}

// The greedy over a pool given in canonical (score, id) order. Both
// the accelerated path and the brute-force reference run exactly this
// code on their pools, so certified prefixes agree bit-for-bit: same
// Similarity arithmetic, same running-max accumulation (in selection
// order), same (g, id) tie-break.
std::vector<DiversifiedPick> GreedySelect(const PointSet& points,
                                          const std::vector<ScoredTuple>& pool,
                                          double lambda, std::size_t k) {
  std::vector<DiversifiedPick> picks;
  // max over already-picked similarities, per pool candidate.
  std::vector<double> penalty(pool.size(), 0.0);
  std::vector<char> taken(pool.size(), 0);
  while (picks.size() < k) {
    std::size_t best = pool.size();
    double best_g = 0.0;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i]) continue;
      const double g = pool[i].score + lambda * penalty[i];
      if (best == pool.size() || g < best_g ||
          (g == best_g && pool[i].id < pool[best].id)) {
        best = i;
        best_g = g;
      }
    }
    if (best == pool.size()) break;  // pool exhausted
    taken[best] = 1;
    picks.push_back(DiversifiedPick{pool[best].id, pool[best].score, best_g});
    const PointView chosen = points[pool[best].id];
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (taken[i]) continue;
      penalty[i] =
          std::max(penalty[i], Similarity(points[pool[i].id], chosen));
    }
  }
  return picks;
}

// Leading run of picks whose utility is strictly below the pool bound
// -- certification is prefix-only: once one pick could have been
// beaten by an out-of-pool tuple, every later penalty is suspect.
std::size_t CertifiedPicks(const std::vector<DiversifiedPick>& picks,
                           double pool_bound) {
  std::size_t certified = 0;
  while (certified < picks.size() &&
         picks[certified].utility < pool_bound) {
    ++certified;
  }
  return certified;
}

}  // namespace

DiversifiedResult DiversifiedTopK(const TopKIndex& index,
                                  const PointSet& points,
                                  const DiversifiedQuery& query) {
  Stopwatch timer;
  DiversifiedResult result;
  if (Status status = ValidateDiversified(query, points.dim());
      !status.ok()) {
    result.termination = Termination::kInvalidQuery;
    result.error = status.ToString();
    return result;
  }
  const std::size_t n = index.size();
  if (query.k == 0 || n == 0) {
    result.termination = Termination::kComplete;
    result.pool_bound = std::numeric_limits<double>::infinity();
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }

  std::size_t m = std::min(n, std::max(query.k,
                                       query.pool_factor * query.k));
  for (;;) {
    TopKQuery pool_query;
    pool_query.weights = query.weights;
    pool_query.k = m;
    const Termination remaining =
        RemainingBudget(query.budget, result.stats.tuples_evaluated, timer,
                        &pool_query.budget);
    if (remaining != Termination::kComplete) {
      // Budget gone before the (re)grown pool could run: keep whatever
      // the previous round certified.
      result.termination = remaining;
      result.stats.elapsed_seconds = timer.ElapsedSeconds();
      return result;
    }

    const TopKResult pool_result = index.Query(pool_query);
    result.stats.Merge(pool_result.stats);
    if (pool_result.termination == Termination::kInvalidQuery ||
        pool_result.termination == Termination::kError) {
      result.termination = pool_result.termination;
      result.error = pool_result.error;
      result.stats.elapsed_seconds = timer.ElapsedSeconds();
      return result;
    }

    // The certified pool and the score bound no out-of-pool tuple can
    // beat: +inf when the pool is the whole relation, the m-th score
    // for a complete smaller pool (a non-pool tuple canonically
    // follows the m-th item), the frontier bound for a partial.
    std::vector<ScoredTuple> pool(
        pool_result.items.begin(),
        pool_result.items.begin() +
            (pool_result.complete() ? pool_result.items.size()
                                    : pool_result.certified_prefix));
    double pool_bound;
    if (!pool_result.complete()) {
      pool_bound = pool_result.frontier_bound;
    } else if (pool.size() >= n) {
      pool_bound = std::numeric_limits<double>::infinity();
    } else {
      pool_bound = pool.empty()
                       ? -std::numeric_limits<double>::infinity()
                       : pool.back().score;
    }

    result.picks = GreedySelect(points, pool, query.lambda, query.k);
    result.pool_size = pool.size();
    result.pool_bound = pool_bound;
    result.certified_prefix = CertifiedPicks(result.picks, pool_bound);
    const std::size_t want = std::min<std::size_t>(query.k, n);
    if (result.certified_prefix == result.picks.size() &&
        result.picks.size() == want) {
      result.termination = Termination::kComplete;
      result.stats.elapsed_seconds = timer.ElapsedSeconds();
      return result;
    }
    if (!pool_result.complete()) {
      // Partial pool: report the budget trip with the prefix the
      // certificate still covers.
      result.termination = pool_result.termination;
      result.stats.elapsed_seconds = timer.ElapsedSeconds();
      return result;
    }
    // Complete pool but an uncertified pick: grow and retry (the pool
    // is strictly below the relation size here, otherwise the bound
    // was +inf and everything certified).
    m = std::min(n, m * 2);
  }
}

DiversifiedResult DiversifiedTopKScan(const PointSet& points,
                                      const DiversifiedQuery& query) {
  Stopwatch timer;
  DiversifiedResult result;
  if (Status status = ValidateDiversified(query, points.dim());
      !status.ok()) {
    result.termination = Termination::kInvalidQuery;
    result.error = status.ToString();
    return result;
  }
  std::vector<ScoredTuple> pool;
  pool.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    pool.push_back(ScoredTuple{static_cast<TupleId>(i),
                               Score(query.weights, points[i])});
  }
  std::sort(pool.begin(), pool.end(), ResultOrderLess);
  result.stats.tuples_evaluated = points.size();
  result.picks = GreedySelect(points, pool, query.lambda, query.k);
  result.pool_size = pool.size();
  result.pool_bound = std::numeric_limits<double>::infinity();
  result.certified_prefix = result.picks.size();
  result.termination = Termination::kComplete;
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace drli
