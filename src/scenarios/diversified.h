// Diversified top-k (DESIGN.md "Query scenarios"): greedy re-ranking
// that trades score for spread. The answer is the sequence produced by
// the canonical greedy over the WHOLE relation:
//
//   repeat k times: pick the unselected tuple minimizing
//       g(t) = Score(w, t) + lambda * max_{s in selected} Sim(t, s)
//   with Sim(a, b) = 1 / (1 + ||a - b||_2), ties on g broken by
//   ascending id; the first pick (empty selection) is the canonical
//   top-1. Lower g is better (lower scores are better everywhere in
//   this library) and the similarity penalty pushes picks away from
//   tuples already chosen.
//
// Index acceleration runs the greedy over a certified candidate pool
// instead of the relation: a plain top-m query with m = max(k,
// pool_factor * k). The certificate: every tuple outside a certified
// top-m pool scores >= the pool bound (the m-th item's score for a
// complete pool, the frontier bound for a budgeted partial), and
// g(t) >= Score(w, t) because the penalty is non-negative -- so a
// greedy pick with g strictly below the pool bound beats every
// out-of-pool tuple, id tie-break included. Picks are certified in
// selection order until the first uncertified one; with an unlimited
// budget the pool doubles until every pick is certified (worst case:
// pool = relation, bound = +inf), so the accelerated greedy equals the
// brute-force greedy exactly.

#ifndef DRLI_SCENARIOS_DIVERSIFIED_H_
#define DRLI_SCENARIOS_DIVERSIFIED_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/point.h"
#include "topk/query.h"

namespace drli {

struct DiversifiedQuery {
  Point weights;
  std::size_t k = 1;
  // Penalty strength; 0 reduces the greedy to the canonical top-k in
  // selection order. Must be finite and >= 0.
  double lambda = 0.5;
  // Initial pool size multiplier c: the first pool query asks for
  // max(k, c * k) items. Must be >= 1.
  std::size_t pool_factor = 4;
  ExecBudget budget{};
};

// One greedy selection, in selection order.
struct DiversifiedPick {
  TupleId id = kInvalidTupleId;
  double score = 0.0;    // plain linear score
  double utility = 0.0;  // g at selection time (== score for the first)
};

struct DiversifiedResult {
  std::vector<DiversifiedPick> picks;  // selection order, not score order
  QueryStats stats;
  Termination termination = Termination::kComplete;
  // picks[0 .. certified_prefix) provably equal the brute-force greedy
  // prefix. Equals picks.size() whenever termination == kComplete.
  std::size_t certified_prefix = 0;
  // Pool the final greedy ran over, and the score lower bound that
  // held for every tuple outside it.
  std::size_t pool_size = 0;
  double pool_bound = 0.0;
  std::string error;

  bool complete() const { return termination == Termination::kComplete; }
};

// Pool-and-grow greedy over any index family. `points` must be the
// relation `index` was built over (ids index into it); the index
// answers the pool queries, the similarity penalty reads `points`.
// stats accumulates every pool query's cost; the greedy itself scores
// no new tuples.
DiversifiedResult DiversifiedTopK(const TopKIndex& index,
                                  const PointSet& points,
                                  const DiversifiedQuery& query);

// Brute-force reference: the same greedy with pool = whole relation
// (bound +inf, everything certified). The differential oracle compares
// engines against this.
DiversifiedResult DiversifiedTopKScan(const PointSet& points,
                                      const DiversifiedQuery& query);

}  // namespace drli

#endif  // DRLI_SCENARIOS_DIVERSIFIED_H_
