#include "scenarios/constrained.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

namespace drli {
namespace {

// Running top-k under the canonical order: a max-heap whose head is
// the worst kept candidate, so an offer either displaces the head or
// is rejected as canonically later than everything kept.
class TopKKeeper {
 public:
  explicit TopKKeeper(std::size_t k) : k_(k) {}

  void Offer(const ScoredTuple& t) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(t);
      std::push_heap(heap_.begin(), heap_.end(), ResultOrderLess);
      return;
    }
    if (ResultOrderLess(t, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), ResultOrderLess);
      heap_.back() = t;
      std::push_heap(heap_.begin(), heap_.end(), ResultOrderLess);
    }
  }

  bool full() const { return heap_.size() == k_; }
  // Worst kept candidate; only meaningful when full().
  const ScoredTuple& worst() const { return heap_.front(); }

  std::vector<ScoredTuple> TakeSorted() {
    std::sort(heap_.begin(), heap_.end(), ResultOrderLess);
    return std::move(heap_);
  }

 private:
  std::size_t k_;
  std::vector<ScoredTuple> heap_;
};

Status ValidateConstrained(const ConstrainedQuery& query, std::size_t dim) {
  TopKQuery base;
  base.weights = query.weights;
  base.k = query.k;
  if (Status status = ValidateQuery(base, dim); !status.ok()) return status;
  return ValidateBox(query.box, dim);
}

// Can a unit with bound `bound` still change a full keeper's answer?
// Ties must stay open: an equal-score member with a smaller id would
// displace the current worst.
bool FrontierOpen(const TopKKeeper& keeper, double bound) {
  return !keeper.full() || bound <= keeper.worst().score;
}

}  // namespace

TopKResult ConstrainedTopK(const DualLayerIndex& index,
                           const ConstrainedQuery& query) {
  Stopwatch timer;
  TopKResult result;
  if (Status status = ValidateConstrained(query, index.points().dim());
      !status.ok()) {
    return InvalidQueryResult(status);
  }

  // Sublayer groups in ascending corner-bound order. The corner is the
  // group's componentwise-min box corner, so its score lower-bounds
  // every member under the non-negative weights ValidateQuery admits.
  const std::vector<SublayerSummary>& catalog = index.sublayer_catalog();
  using Entry = std::pair<double, std::size_t>;  // (bound, catalog slot)
  std::vector<Entry> entries;
  entries.reserve(catalog.size());
  for (std::size_t g = 0; g < catalog.size(); ++g) {
    entries.emplace_back(Score(query.weights, catalog[g].bbox_lo), g);
  }
  std::sort(entries.begin(), entries.end());

  BudgetGate gate(query.budget);
  TopKKeeper keeper(query.k);
  for (std::size_t next = 0; next < entries.size(); ++next) {
    const double bound = entries[next].first;
    if (!FrontierOpen(keeper, bound)) break;
    if (const Termination stop = gate.Step(result.stats.tuples_evaluated);
        stop != Termination::kComplete) {
      result.items = keeper.TakeSorted();
      result.stats.elapsed_seconds = timer.ElapsedSeconds();
      FinalizePartial(result, stop, bound);
      return result;
    }
    const SublayerSummary& group = catalog[entries[next].second];
    if (!query.box.Intersects(group.bbox_lo, group.bbox_hi)) {
      ++result.stats.boxes_pruned;
      continue;
    }
    for (const TupleId id : group.members) {
      const PointView p = index.points()[id];
      if (!query.box.Contains(p)) continue;
      // Definition-9 accounting: only tuples the predicate admits are
      // scored; a containment miss costs comparisons, not a score.
      ++result.stats.tuples_evaluated;
      result.accessed.push_back(id);
      keeper.Offer(ScoredTuple{id, Score(query.weights, p)});
    }
  }

  result.items = keeper.TakeSorted();
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  FinalizeComplete(result);
  return result;
}

TopKResult ConstrainedTopK(const ShardedDualLayerIndex& index,
                           const ConstrainedQuery& query) {
  Stopwatch timer;
  TopKResult result;
  if (Status status = ValidateConstrained(query, index.dim()); !status.ok()) {
    return InvalidQueryResult(status);
  }

  // Shards in ascending frontier-bound order (the grouped-corner bound
  // the unconstrained coordinator uses). The per-shard box is the fold
  // of the shard's sublayer catalog boxes.
  using Entry = std::pair<double, std::size_t>;  // (bound, shard)
  std::vector<Entry> entries;
  for (std::size_t s = 0; s < index.num_shards(); ++s) {
    if (index.shard_members(s).empty()) continue;
    entries.emplace_back(index.ShardLowerBound(s, query.weights), s);
  }
  std::sort(entries.begin(), entries.end());

  TopKKeeper keeper(query.k);
  const auto finish_partial = [&](Termination reason, double frontier) {
    result.items = keeper.TakeSorted();
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    FinalizePartial(result, reason, frontier);
    return result;
  };

  for (std::size_t next = 0; next < entries.size(); ++next) {
    const double bound = entries[next].first;
    const std::size_t s = entries[next].second;
    if (!FrontierOpen(keeper, bound)) break;

    const DualLayerIndex& shard = index.shard(s);
    const std::vector<SublayerSummary>& catalog = shard.sublayer_catalog();
    bool overlaps = false;
    for (const SublayerSummary& group : catalog) {
      if (query.box.Intersects(group.bbox_lo, group.bbox_hi)) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) {
      ++result.stats.boxes_pruned;
      continue;
    }

    ConstrainedQuery sub = query;
    const Termination remaining =
        RemainingBudget(query.budget, result.stats.tuples_evaluated, timer,
                        &sub.budget);
    if (remaining != Termination::kComplete) {
      return finish_partial(remaining, bound);
    }

    TopKResult local = ConstrainedTopK(shard, sub);
    ++result.stats.shards_touched;
    result.stats.tuples_evaluated += local.stats.tuples_evaluated;
    result.stats.virtual_evaluated += local.stats.virtual_evaluated;
    result.stats.boxes_pruned += local.stats.boxes_pruned;
    const std::vector<TupleId>& members = index.shard_members(s);
    for (const TupleId local_id : local.accessed) {
      result.accessed.push_back(members[local_id]);
    }
    // Local (score, local-id) order equals global (score, global-id)
    // order because shard membership is ascending -- same argument as
    // the unconstrained scatter-gather merge.
    const std::size_t usable = local.complete()
                                   ? local.items.size()
                                   : local.certified_prefix;
    for (std::size_t i = 0; i < usable; ++i) {
      keeper.Offer(
          ScoredTuple{members[local.items[i].id], local.items[i].score});
    }
    if (!local.complete()) {
      // The tripped shard bounds its own remainder; later shards are
      // bounded by their (ascending) corner bounds.
      double frontier = local.frontier_bound;
      if (next + 1 < entries.size()) {
        frontier = std::min(frontier, entries[next + 1].first);
      }
      return finish_partial(local.termination, frontier);
    }
  }

  result.items = keeper.TakeSorted();
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  FinalizeComplete(result);
  return result;
}

TopKResult ConstrainedTopK(const TieredDualLayerIndex& index,
                           const ConstrainedQuery& query) {
  Stopwatch timer;
  TopKResult result;
  if (Status status = ValidateConstrained(query, index.dim()); !status.ok()) {
    return InvalidQueryResult(status);
  }

  TopKKeeper keeper(query.k);

  // The memtable is always fully scanned (it is small by construction:
  // at most memtable_capacity rows), so a later partial stop only has
  // to certify against run bounds.
  const PointSet& memtable = index.memtable();
  const std::vector<TupleId>& memtable_ids = index.memtable_ids();
  for (std::size_t i = 0; i < memtable.size(); ++i) {
    const PointView p = memtable[i];
    if (!query.box.Contains(p)) continue;
    ++result.stats.tuples_evaluated;
    result.accessed.push_back(memtable_ids[i]);
    keeper.Offer(ScoredTuple{memtable_ids[i], Score(query.weights, p)});
  }

  // Runs in ascending grouped-corner bound order.
  using Entry = std::pair<double, std::size_t>;  // (bound, run slot)
  std::vector<Entry> entries;
  const std::size_t d = index.dim();
  for (std::size_t r = 0; r < index.num_runs(); ++r) {
    const TieredRun& run = index.run(r);
    double bound = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c * d < run.bound_values.size(); ++c) {
      bound = std::min(
          bound, Score(query.weights,
                       PointView(run.bound_values.data() + c * d, d)));
    }
    entries.emplace_back(bound, r);
  }
  std::sort(entries.begin(), entries.end());

  const auto finish_partial = [&](Termination reason, double frontier) {
    result.items = keeper.TakeSorted();
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    FinalizePartial(result, reason, frontier);
    return result;
  };

  for (std::size_t next = 0; next < entries.size(); ++next) {
    const double bound = entries[next].first;
    const TieredRun& run = index.run(entries[next].second);
    if (!FrontierOpen(keeper, bound)) break;

    const std::vector<SublayerSummary>& catalog = run.index.sublayer_catalog();
    bool overlaps = false;
    for (const SublayerSummary& group : catalog) {
      if (query.box.Intersects(group.bbox_lo, group.bbox_hi)) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) {
      ++result.stats.boxes_pruned;
      continue;
    }

    ConstrainedQuery sub = query;
    const Termination remaining =
        RemainingBudget(query.budget, result.stats.tuples_evaluated, timer,
                        &sub.budget);
    if (remaining != Termination::kComplete) {
      return finish_partial(remaining, bound);
    }
    // k + dead(run) local items guarantee k live ones when the run has
    // them: any further member follows at least k live predecessors.
    sub.k = query.k + run.dead;

    TopKResult local = ConstrainedTopK(run.index, sub);
    ++result.stats.runs_opened;
    result.stats.tuples_evaluated += local.stats.tuples_evaluated;
    result.stats.virtual_evaluated += local.stats.virtual_evaluated;
    result.stats.boxes_pruned += local.stats.boxes_pruned;
    for (const TupleId local_id : local.accessed) {
      result.accessed.push_back(run.ids[local_id]);
    }
    const std::size_t usable = local.complete()
                                   ? local.items.size()
                                   : local.certified_prefix;
    for (std::size_t i = 0; i < usable; ++i) {
      const TupleId gid = run.ids[local.items[i].id];
      if (index.tombstones().count(gid) != 0) continue;
      keeper.Offer(ScoredTuple{gid, local.items[i].score});
    }
    if (!local.complete()) {
      double frontier = local.frontier_bound;
      if (next + 1 < entries.size()) {
        frontier = std::min(frontier, entries[next + 1].first);
      }
      return finish_partial(local.termination, frontier);
    }
  }

  result.items = keeper.TakeSorted();
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  FinalizeComplete(result);
  return result;
}

TopKResult ConstrainedScanRows(const PointSet& points,
                               const std::vector<TupleId>& ids,
                               const ConstrainedQuery& query) {
  Stopwatch timer;
  TopKResult result;
  if (Status status = ValidateConstrained(query, points.dim()); !status.ok()) {
    return InvalidQueryResult(status);
  }

  BudgetGate gate(query.budget);
  TopKKeeper keeper(query.k);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (const Termination stop = gate.Step(result.stats.tuples_evaluated);
        stop != Termination::kComplete) {
      result.items = keeper.TakeSorted();
      result.stats.elapsed_seconds = timer.ElapsedSeconds();
      // Mid-scan there is no bound on the unscanned remainder (same
      // contract as the unconstrained FullScan): certify nothing.
      FinalizePartial(result, stop,
                      -std::numeric_limits<double>::infinity());
      return result;
    }
    const PointView p = points[i];
    if (!query.box.Contains(p)) continue;
    ++result.stats.tuples_evaluated;
    result.accessed.push_back(ids[i]);
    keeper.Offer(ScoredTuple{ids[i], Score(query.weights, p)});
  }

  result.items = keeper.TakeSorted();
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  FinalizeComplete(result);
  return result;
}

TopKResult ConstrainedTopKScan(const PointSet& points,
                               const ConstrainedQuery& query) {
  std::vector<TupleId> identity(points.size());
  for (std::size_t i = 0; i < identity.size(); ++i) {
    identity[i] = static_cast<TupleId>(i);
  }
  return ConstrainedScanRows(points, identity, query);
}

}  // namespace drli
