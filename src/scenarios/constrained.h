// Constrained top-k (DESIGN.md "Query scenarios"): the plain linear
// top-k query restricted to tuples inside an axis-aligned attribute
// box. The answer is the canonical top-k (ascending (score, id)) of
// the tuples the box contains -- the same contract as every other
// family, over a smaller universe.
//
// Index acceleration pushes the predicate into the layer structure:
// each engine keeps a heap of pruning units ordered by a sound score
// lower bound (the componentwise-min corner of the unit's bounding
// box, or the grouped-corner frontier bounds for shards / runs) and
//   * skips a unit entirely when its bounding box misses the
//     constraint box (stats.boxes_pruned counts these), and
//   * stops once the next unit's bound exceeds the current k-th
//     in-box score (the usual layer-frontier termination, exact in FP
//     because dominance is score-monotone under non-negative weights).
// Units are: DL+ sublayer groups (DualLayerIndex::sublayer_catalog),
// whole shards for sdl+, and whole runs for tdl+ (plus a full scan of
// the memtable, mirroring the unconstrained tiered merge).
//
// Certified partials: with an ExecBudget, a tripped traversal returns
// the candidates found so far with frontier_bound = the next unit's
// lower bound. That certifies the usual strict-below-frontier prefix:
// unopened units cannot score below the bound, box-pruned units hold
// no eligible tuple at all, and a tuple rejected by the running top-k
// heap canonically follows every returned item.

#ifndef DRLI_SCENARIOS_CONSTRAINED_H_
#define DRLI_SCENARIOS_CONSTRAINED_H_

#include <cstddef>
#include <vector>

#include "common/point.h"
#include "core/dual_layer.h"
#include "core/tiered_index.h"
#include "scenarios/scenario_box.h"
#include "shard/sharded_index.h"
#include "topk/query.h"

namespace drli {

// A linear top-k query plus the attribute constraint box. Weight
// semantics follow ValidateQuery (non-negative, finite, not all
// zero); the box follows ValidateBox.
struct ConstrainedQuery {
  Point weights;
  std::size_t k = 1;
  AttributeBox box;
  ExecBudget budget{};
};

// Sublayer-pruning traversal over one DL+ index.
TopKResult ConstrainedTopK(const DualLayerIndex& index,
                           const ConstrainedQuery& query);

// Scatter-gather over shards: a shard is opened only when its frontier
// bound reaches the merge frontier AND its bounding box intersects the
// constraint; opened shards run the DL+ traversal above with the
// remaining budget (RemainingBudget composition).
TopKResult ConstrainedTopK(const ShardedDualLayerIndex& index,
                           const ConstrainedQuery& query);

// Tiered engine: the memtable is always fully scanned (so partials
// certify against run bounds alone, like the unconstrained merge);
// runs open in bound order, each queried for k + dead(run) items so
// tombstoned members can never starve the live answer.
TopKResult ConstrainedTopK(const TieredDualLayerIndex& index,
                           const ConstrainedQuery& query);

// Brute-force reference: one pass over `points` in id order, scoring
// exactly the tuples the box contains (they are the scenario's cost
// universe). Enrolled in the differential oracle and fuzzer as the
// ground truth for every engine above. Budget semantics match
// FullScan: a mid-scan stop cannot bound the remainder, so partials
// certify nothing (frontier -inf).
TopKResult ConstrainedTopKScan(const PointSet& points,
                               const ConstrainedQuery& query);

// The scan over an explicit id mapping: row i of `points` carries
// external id `ids[i]` (ascending). Lets the oracle compute expected
// answers for dynamic engines whose live rows are a subset of the
// original id space. `ConstrainedTopKScan` is the identity-id special
// case.
TopKResult ConstrainedScanRows(const PointSet& points,
                               const std::vector<TupleId>& ids,
                               const ConstrainedQuery& query);

}  // namespace drli

#endif  // DRLI_SCENARIOS_CONSTRAINED_H_
