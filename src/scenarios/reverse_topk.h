// Monochromatic reverse top-k for d = 2 (Vlachou et al., ICDE'10 --
// the paper's reference [32]): for which weight vectors (w1, 1 - w1)
// does tuple t belong to the top-k answer set? In 2-d every score is a
// line over w1, so the answer is a union of w1-intervals whose
// endpoints are rank-swap weights -- exactly the slope-interval
// machinery of the zero layer's weight-range partition (Section V-A),
// pushed from top-1 to top-k by the kinetic sweep in
// core/rank_sweep_2d.h.
//
// Index acceleration restricts the sweep to the first min(k, L)
// coarse layers of a DL+ index: a tuple of coarse layer j has a chain
// of j strict dominators (one per shallower layer), each strictly
// better at every interior weight, so tuples of layer >= k are never
// in any interior top-k set and cannot affect a k-boundary swap --
// the restricted sweep reproduces the full partition. A target deeper
// than layer k - 1 short-circuits to the empty answer without any
// sweep. For k == 1 on an index carrying the 2-d zero layer, the
// weight-range table IS the answer: the target's chain interval
// (guarded against duplicate points, where the canonical answer
// belongs to the smallest id).
//
// Budget semantics: the candidate pool (the swept tuples) is the
// metered cost -- stats.tuples_evaluated counts it, and a budget too
// small for the pool returns an empty, uncertified partial. Interval
// endpoints are exact sweep crossings; the differential oracle
// compares engines against the full-relation sweep with a 1e-9
// endpoint tolerance plus sampled membership probes.

#ifndef DRLI_SCENARIOS_REVERSE_TOPK_H_
#define DRLI_SCENARIOS_REVERSE_TOPK_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/point.h"
#include "core/dual_layer.h"
#include "topk/query.h"

namespace drli {

struct ReverseTopKQuery {
  TupleId target = 0;
  std::size_t k = 1;
  ExecBudget budget{};
};

// One maximal w1-range [lo, hi] (within [0, 1]) on which the target is
// in the top-k set; endpoints are sweep breakpoints or 0/1. At an
// exact-tie breakpoint either neighbouring set is a valid answer, so
// interval ends are reported closed.
struct WeightInterval {
  double lo = 0.0;
  double hi = 0.0;
};

struct ReverseTopKResult {
  std::vector<WeightInterval> intervals;  // disjoint, ascending
  QueryStats stats;
  Termination termination = Termination::kComplete;
  // True when the k == 1 zero-layer weight-range table answered
  // directly (no sweep ran).
  bool used_weight_table = false;
  std::string error;

  bool complete() const { return termination == Termination::kComplete; }
};

// Layer-restricted sweep over a DL+ index (d == 2 only; other
// dimensionalities are rejected as invalid queries).
ReverseTopKResult ReverseTopK2D(const DualLayerIndex& index,
                                const ReverseTopKQuery& query);

// Brute-force reference: the kinetic sweep over the whole relation.
ReverseTopKResult ReverseTopK2DScan(const PointSet& points,
                                    const ReverseTopKQuery& query);

}  // namespace drli

#endif  // DRLI_SCENARIOS_REVERSE_TOPK_H_
