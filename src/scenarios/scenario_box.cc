#include "scenarios/scenario_box.h"

#include <cmath>
#include <limits>
#include <string>

namespace drli {

AttributeBox AttributeBox::All(std::size_t d) {
  AttributeBox box;
  box.lo.assign(d, -std::numeric_limits<double>::infinity());
  box.hi.assign(d, std::numeric_limits<double>::infinity());
  return box;
}

bool AttributeBox::Contains(PointView p) const {
  for (std::size_t a = 0; a < lo.size(); ++a) {
    if (p[a] < lo[a] || p[a] > hi[a]) return false;
  }
  return true;
}

bool AttributeBox::Intersects(PointView other_lo, PointView other_hi) const {
  for (std::size_t a = 0; a < lo.size(); ++a) {
    if (other_hi[a] < lo[a] || other_lo[a] > hi[a]) return false;
  }
  return true;
}

Status ValidateBox(const AttributeBox& box, std::size_t dim) {
  if (box.lo.size() != dim || box.hi.size() != dim) {
    return Status::InvalidArgument(
        "constraint box dimensionality mismatch: got " +
        std::to_string(box.lo.size()) + "x" + std::to_string(box.hi.size()) +
        ", index has " + std::to_string(dim));
  }
  for (std::size_t a = 0; a < dim; ++a) {
    if (std::isnan(box.lo[a]) || std::isnan(box.hi[a])) {
      return Status::InvalidArgument("constraint box endpoints must not be NaN");
    }
  }
  return Status::Ok();
}

}  // namespace drli
