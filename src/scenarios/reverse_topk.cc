#include "scenarios/reverse_topk.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "core/rank_sweep_2d.h"
#include "core/zero_layer.h"

namespace drli {
namespace {

Status ValidateReverse(const ReverseTopKQuery& query, std::size_t dim,
                       std::size_t n) {
  if (dim != 2) {
    return Status::InvalidArgument(
        "reverse top-k requires a 2-d relation (the weight space must "
        "be one-dimensional)");
  }
  if (query.target >= n) {
    return Status::InvalidArgument("reverse top-k target id out of range");
  }
  return Status::Ok();
}

std::vector<WeightInterval> FromPairs(
    const std::vector<std::pair<double, double>>& pairs) {
  std::vector<WeightInterval> intervals;
  intervals.reserve(pairs.size());
  for (const auto& [lo, hi] : pairs) intervals.push_back({lo, hi});
  return intervals;
}

// Charges the candidate pool against the budget. The sweep has no
// incremental stop point that certifies anything useful (the set
// partition is global), so metering is all-or-nothing: either the
// pool fits the remaining allowance or the query returns empty and
// uncertified.
Termination MeterPool(const ExecBudget& budget, std::size_t pool) {
  BudgetGate gate(budget);
  return gate.Step(pool);
}

}  // namespace

ReverseTopKResult ReverseTopK2D(const DualLayerIndex& index,
                                const ReverseTopKQuery& query) {
  Stopwatch timer;
  ReverseTopKResult result;
  const PointSet& points = index.points();
  if (Status status = ValidateReverse(query, points.dim(), points.size());
      !status.ok()) {
    result.termination = Termination::kInvalidQuery;
    result.error = status.ToString();
    return result;
  }
  if (query.k == 0) {
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return result;  // nobody is in the top-0
  }

  const std::vector<std::vector<TupleId>>& layers = index.coarse_layers();
  const auto target_node = static_cast<DualLayerIndex::NodeId>(query.target);
  if (index.coarse_layer_of(target_node) >= query.k) {
    // The target has >= k strict dominators (one per shallower layer),
    // each strictly better at every interior weight: the answer is
    // empty at zero cost -- the layer structure alone certifies it.
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }

  // k == 1 via the zero layer: the weight-range table stores exactly
  // the top-1 partition of (0,1). A duplicate of the target's point
  // takes the canonical answer when its id is smaller, and a target
  // whose point is not on the chain (and duplicates no chain point) is
  // never a canonical top-1.
  if (query.k == 1 && index.uses_weight_table() &&
      !index.weight_table().empty()) {
    const WeightRangeTable& table = index.weight_table();
    const std::vector<TupleId>& first_layer = layers.front();
    if (const Termination stop =
            MeterPool(query.budget, first_layer.size());
        stop != Termination::kComplete) {
      result.termination = stop;
      result.stats.elapsed_seconds = timer.ElapsedSeconds();
      return result;
    }
    result.stats.tuples_evaluated = first_layer.size();
    result.used_weight_table = true;
    const PointView tp = points[query.target];
    // Canonical owner of the target's point: the smallest first-layer
    // id carrying identical attributes (duplicates share a layer).
    TupleId owner = query.target;
    for (const TupleId id : first_layer) {
      if (id < owner && Compare(points[id], tp) == DomRel::kEqual) owner = id;
    }
    if (owner == query.target) {
      const std::vector<TupleId>& chain = table.chain();
      const std::vector<double>& breakpoints = table.breakpoints();
      for (std::size_t pos = 0; pos < chain.size(); ++pos) {
        if (Compare(points[chain[pos]], tp) != DomRel::kEqual) continue;
        // chain[pos] is optimal on [breakpoints[pos],
        // breakpoints[pos - 1]] (breakpoints descend; ends clamp to
        // the full segment).
        const double lo =
            pos + 1 < chain.size() ? breakpoints[pos] : 0.0;
        const double hi = pos > 0 ? breakpoints[pos - 1] : 1.0;
        result.intervals.push_back({lo, hi});
        break;  // strict convexity: one chain position per point
      }
    }
    std::sort(result.intervals.begin(), result.intervals.end(),
              [](const WeightInterval& a, const WeightInterval& b) {
                return a.lo < b.lo;
              });
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }

  // General case: sweep the union of the first min(k, L) coarse
  // layers. Candidate ids stay ascending, so the restricted sweep's
  // initial order (and every crossing) matches the full sweep's
  // restriction -- breakpoints come out identical.
  std::vector<TupleId> candidates;
  const std::size_t depth = std::min<std::size_t>(query.k, layers.size());
  for (std::size_t j = 0; j < depth; ++j) {
    candidates.insert(candidates.end(), layers[j].begin(), layers[j].end());
  }
  std::sort(candidates.begin(), candidates.end());
  if (const Termination stop = MeterPool(query.budget, candidates.size());
      stop != Termination::kComplete) {
    result.termination = stop;
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }
  result.stats.tuples_evaluated = candidates.size();

  const PointSet pool = points.Subset(candidates);
  const auto it =
      std::lower_bound(candidates.begin(), candidates.end(), query.target);
  const auto local_target =
      static_cast<TupleId>(it - candidates.begin());
  const RankSweepResult sweep = SweepTopKSets2D(pool, query.k);
  result.intervals = FromPairs(ReverseTopKIntervals2D(sweep, local_target));
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

ReverseTopKResult ReverseTopK2DScan(const PointSet& points,
                                    const ReverseTopKQuery& query) {
  Stopwatch timer;
  ReverseTopKResult result;
  if (Status status = ValidateReverse(query, points.dim(), points.size());
      !status.ok()) {
    result.termination = Termination::kInvalidQuery;
    result.error = status.ToString();
    return result;
  }
  if (query.k == 0) {
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }
  if (const Termination stop = MeterPool(query.budget, points.size());
      stop != Termination::kComplete) {
    result.termination = stop;
    result.stats.elapsed_seconds = timer.ElapsedSeconds();
    return result;
  }
  result.stats.tuples_evaluated = points.size();
  const RankSweepResult sweep = SweepTopKSets2D(points, query.k);
  result.intervals = FromPairs(ReverseTopKIntervals2D(sweep, query.target));
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace drli
