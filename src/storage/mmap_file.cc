#include "storage/mmap_file.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace drli {

StatusOr<std::shared_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " + err);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  const std::uint8_t* data = nullptr;
  if (size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("cannot mmap " + path + ": " + err);
    }
    data = static_cast<const std::uint8_t*>(mapped);
  }
  // The mapping persists after the descriptor closes.
  ::close(fd);
  return std::shared_ptr<MmapFile>(new MmapFile(data, size));
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

}  // namespace drli
