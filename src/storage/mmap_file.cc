#include "storage/mmap_file.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace drli {

StatusOr<std::shared_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("cannot stat " + path + ": " + err);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  const std::uint8_t* data = nullptr;
  if (size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("cannot mmap " + path + ": " + err);
    }
    data = static_cast<const std::uint8_t*>(mapped);
  }
  // The mapping persists after the descriptor closes.
  ::close(fd);
  return std::shared_ptr<MmapFile>(new MmapFile(data, size));
}

StatusOr<std::vector<std::uint8_t>> MmapFile::ReadFileContents(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("fstat(" + path + "): " + err);
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::read(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted: retry the read
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IoError("read(" + path + ") at offset " +
                             std::to_string(done) + ": " + err);
    }
    if (n == 0) {
      // Premature EOF: the file shrank between fstat and the read.
      ::close(fd);
      return Status::IoError("read(" + path + "): unexpected EOF at offset " +
                             std::to_string(done) + " of " +
                             std::to_string(bytes.size()) + " bytes");
    }
    done += static_cast<std::size_t>(n);
  }
  ::close(fd);
  return bytes;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

}  // namespace drli
