#include "storage/page_layout.h"

#include <list>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"

namespace drli {

PageLayout::PageLayout(const std::vector<std::vector<TupleId>>& groups,
                       std::size_t tuples_per_page)
    : PageLayout([&groups] {
        std::size_t n = 0;
        for (const auto& g : groups) n += g.size();
        return n;
      }()) {
  DRLI_CHECK_GE(tuples_per_page, 1u);
  std::vector<bool> assigned(page_of_.size(), false);
  std::size_t page = 0;
  for (const auto& group : groups) {
    std::size_t in_page = 0;
    for (TupleId id : group) {
      DRLI_CHECK_LT(id, page_of_.size());
      DRLI_CHECK(!assigned[id]) << "tuple " << id << " in two groups";
      assigned[id] = true;
      if (in_page == tuples_per_page) {
        ++page;
        in_page = 0;
      }
      page_of_[id] = static_cast<std::uint32_t>(page);
      ++in_page;
    }
    if (in_page > 0) ++page;  // groups never share a page
  }
  num_pages_ = page;
}

PageLayout PageLayout::Sequential(std::size_t n,
                                  std::size_t tuples_per_page) {
  std::vector<TupleId> all(n);
  std::iota(all.begin(), all.end(), 0);
  return PageLayout({all}, tuples_per_page);
}

std::size_t PageLayout::DistinctPages(
    const std::vector<TupleId>& accesses) const {
  std::unordered_set<std::uint32_t> pages;
  pages.reserve(accesses.size());
  for (TupleId id : accesses) {
    DRLI_DCHECK(id < page_of_.size());
    pages.insert(page_of_[id]);
  }
  return pages.size();
}

std::size_t PageLayout::LruFetches(const std::vector<TupleId>& accesses,
                                   std::size_t buffer_pages) const {
  DRLI_CHECK_GE(buffer_pages, 1u);
  // Classic LRU: list in recency order plus a page -> iterator map.
  std::list<std::uint32_t> recency;
  std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> pos;
  pos.reserve(2 * buffer_pages);
  std::size_t fetches = 0;
  for (TupleId id : accesses) {
    const std::uint32_t page = page_of_[id];
    auto it = pos.find(page);
    if (it != pos.end()) {
      recency.splice(recency.begin(), recency, it->second);
      continue;
    }
    ++fetches;
    if (pos.size() == buffer_pages) {
      pos.erase(recency.back());
      recency.pop_back();
    }
    recency.push_front(page);
    pos[page] = recency.begin();
  }
  return fetches;
}

}  // namespace drli
