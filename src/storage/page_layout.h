// Disk-layout simulation for layer-based indexes. The paper (and the
// Dominant Graph paper it cites) notes the indexes become disk-based by
// storing the tuples of each layer in the same disk blocks; this module
// quantifies that claim: given a grouping of tuples (layers, sublayers,
// or raw insertion order) packed into fixed-capacity pages, it converts
// a query's access trace into page I/O counts -- distinct pages touched
// and fetches under an LRU buffer pool.

#ifndef DRLI_STORAGE_PAGE_LAYOUT_H_
#define DRLI_STORAGE_PAGE_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "common/point.h"

namespace drli {

class PageLayout {
 public:
  // Packs the tuples of each group, in order, into pages of
  // `tuples_per_page`; a new group starts a new page (layers do not
  // share pages). Groups must jointly cover ids [0, n) exactly once.
  PageLayout(const std::vector<std::vector<TupleId>>& groups,
             std::size_t tuples_per_page);

  // Convenience: one group holding 0..n-1 (heap-file layout).
  static PageLayout Sequential(std::size_t n, std::size_t tuples_per_page);

  std::size_t num_pages() const { return num_pages_; }
  std::size_t num_tuples() const { return page_of_.size(); }
  std::size_t page_of(TupleId id) const { return page_of_[id]; }

  // Number of distinct pages holding the accessed tuples (infinite
  // buffer pool: each page fetched once).
  std::size_t DistinctPages(const std::vector<TupleId>& accesses) const;

  // Page fetches when the trace runs against an LRU buffer pool of
  // `buffer_pages` frames (>= 1).
  std::size_t LruFetches(const std::vector<TupleId>& accesses,
                         std::size_t buffer_pages) const;

 private:
  explicit PageLayout(std::size_t n) : page_of_(n, 0) {}

  std::vector<std::uint32_t> page_of_;
  std::size_t num_pages_ = 0;
};

}  // namespace drli

#endif  // DRLI_STORAGE_PAGE_LAYOUT_H_
