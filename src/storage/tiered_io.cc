#include "storage/tiered_io.h"

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "common/crc32c.h"

namespace drli {

namespace {

using tiered_manifest::kMagic;
using tiered_manifest::kMaxNameLength;
using tiered_manifest::kMaxRuns;
using tiered_manifest::kVersion;

void AppendU32(std::string* out, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(bytes, 4);
}

void AppendU64(std::string* out, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(bytes, 8);
}

void AppendF64(std::string* out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, 8);
  AppendU64(out, bits);
}

// Bounded little-endian reader over the manifest bytes; every Read
// checks the remaining length so a truncated or lying manifest becomes
// a Corruption status, never an out-of-bounds read.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}

  bool ReadU32(std::uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    std::uint32_t out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 4;
    *v = out;
    return true;
  }

  bool ReadU64(std::uint64_t* v) {
    if (size_ - pos_ < 8) return false;
    std::uint64_t out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += 8;
    *v = out;
    return true;
  }

  bool ReadF64(double* v) {
    std::uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }

  bool ReadString(std::uint64_t length, std::string* v) {
    if (size_ - pos_ < length) return false;
    v->assign(data_ + pos_, static_cast<std::size_t>(length));
    pos_ += static_cast<std::size_t>(length);
    return true;
  }

  std::size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// Directory prefix of `path` including the trailing separator, "" for a
// bare filename -- run files are addressed relative to the manifest.
std::string DirOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

std::string BaseOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + tmp + " for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  const bool flushed = bool(out);
  out.close();
  if (!flushed || out.fail()) {
    std::remove(tmp.c_str());
    return Status::IoError("write failure on " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IoError("cannot stat " + path);
  in.seekg(0, std::ios::beg);
  std::string bytes(static_cast<std::size_t>(size), '\0');
  if (size > 0 && !in.read(bytes.data(), size)) {
    return Status::IoError("cannot read " + path);
  }
  return bytes;
}

// A run file name must stay inside the manifest's directory.
bool SafeRelativeFile(const std::string& name) {
  if (name.empty() || name == "." || name == "..") return false;
  return name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos;
}

Status CorruptManifest(const std::string& path, const std::string& detail) {
  return Status::Corruption("tiered manifest " + path + ": " + detail);
}

struct ParsedManifest {
  TieredManifestInfo info;
  std::vector<std::vector<TupleId>> run_ids;  // per run, ascending
  std::vector<TupleId> memtable_ids;
  std::vector<double> memtable_rows;  // memtable_ids.size() x dim
  std::vector<TupleId> tombstones;    // ascending
};

// Parses + validates everything except the run files themselves.
// `full` is optional (Inspect skips materializing the id lists and
// memtable rows).
Status ParseManifest(const std::string& path, const std::string& bytes,
                     TieredManifestInfo* info, ParsedManifest* full) {
  // Fixed header (16 + 56 bytes) + checksum is the smallest legal
  // manifest; anything shorter cannot even hold the trailer.
  if (bytes.size() < 16 + 56 + 4) {
    return CorruptManifest(path, "truncated");
  }
  const std::size_t body = bytes.size() - 4;
  std::uint32_t stored_crc = 0;
  {
    Cursor trailer(bytes.data() + body, 4);
    trailer.ReadU32(&stored_crc);
  }
  const std::uint32_t actual_crc = Crc32c(bytes.data(), body);
  Cursor cursor(bytes.data(), body);

  std::uint32_t magic = 0, version = 0, dim = 0, reserved = 0;
  cursor.ReadU32(&magic);
  if (magic != kMagic) return CorruptManifest(path, "bad magic");
  // Magic before checksum so a non-manifest file reads as "not a
  // manifest", but any bit flip inside a real manifest -- trailer
  // included -- is a checksum failure.
  if (actual_crc != stored_crc) {
    return CorruptManifest(path, "checksum mismatch");
  }
  cursor.ReadU32(&version);
  if (version != kVersion) {
    return CorruptManifest(path,
                           "unsupported version " + std::to_string(version));
  }
  cursor.ReadU32(&dim);
  if (dim == 0 || dim > snapshot::kMaxDim) {
    return CorruptManifest(path, "dim out of range");
  }
  cursor.ReadU32(&reserved);
  if (reserved != 0) return CorruptManifest(path, "reserved field not zero");
  std::uint64_t generation = 0, next_id = 0, next_run_uid = 0, num_runs = 0,
                memtable_rows = 0, num_tombstones = 0, flags = 0,
                name_len = 0;
  cursor.ReadU64(&generation);
  cursor.ReadU64(&next_id);
  cursor.ReadU64(&next_run_uid);
  cursor.ReadU64(&num_runs);
  cursor.ReadU64(&memtable_rows);
  cursor.ReadU64(&num_tombstones);
  cursor.ReadU64(&flags);
  if (!cursor.ReadU64(&name_len)) return CorruptManifest(path, "truncated");
  if (num_runs > kMaxRuns) {
    return CorruptManifest(path, "run count out of range");
  }
  if (next_id >= kInvalidTupleId) {
    return CorruptManifest(path, "next_id out of range");
  }
  if (next_run_uid > std::numeric_limits<std::uint32_t>::max()) {
    return CorruptManifest(path, "next_run_uid out of range");
  }
  // Every stable id occupies at least 4 manifest bytes, so counts
  // beyond size/4 cannot be covered -- reject before reserving.
  if (memtable_rows > bytes.size() / 4 ||
      num_tombstones > bytes.size() / 4) {
    return CorruptManifest(path, "counts exceed manifest capacity");
  }
  if (flags != 0) return CorruptManifest(path, "unknown flags");
  if (name_len > kMaxNameLength) return CorruptManifest(path, "name too long");
  std::string name;
  if (!cursor.ReadString(name_len, &name)) {
    return CorruptManifest(path, "truncated name");
  }

  info->version = version;
  info->dim = dim;
  info->generation = generation;
  info->next_id = next_id;
  info->next_run_uid = next_run_uid;
  info->memtable_rows = memtable_rows;
  info->num_tombstones = num_tombstones;
  info->name = std::move(name);

  if (full != nullptr) {
    full->run_ids.resize(static_cast<std::size_t>(num_runs));
  }
  // Runs must appear in ascending-min-id order with pairwise disjoint
  // intervals -- exactly the in-memory invariant. Tracking the running
  // max id enforces both at once.
  TupleId max_seen = 0;
  bool any_seen = false;
  for (std::uint64_t r = 0; r < num_runs; ++r) {
    std::uint32_t uid = 0, tier = 0;
    std::uint64_t num_points = 0, file_len = 0;
    if (!cursor.ReadU32(&uid) || !cursor.ReadU32(&tier) ||
        !cursor.ReadU64(&num_points) || !cursor.ReadU64(&file_len)) {
      return CorruptManifest(path, "truncated run table");
    }
    if (uid >= next_run_uid) {
      return CorruptManifest(path, "run uid not below next_run_uid");
    }
    for (const TieredManifestRunInfo& prior : info->runs) {
      if (prior.uid == uid) {
        return CorruptManifest(path, "duplicate run uid");
      }
    }
    if (num_points == 0) {
      return CorruptManifest(path, "empty run");
    }
    if (num_points > next_id) {
      return CorruptManifest(path, "run cardinality exceeds id space");
    }
    if (file_len == 0 || file_len > kMaxNameLength) {
      return CorruptManifest(path, "run file name length out of range");
    }
    std::string file;
    if (!cursor.ReadString(file_len, &file)) {
      return CorruptManifest(path, "truncated run file name");
    }
    if (!SafeRelativeFile(file)) {
      return CorruptManifest(path, "unsafe run file name: " + file);
    }
    if (cursor.remaining() < num_points * 4) {
      return CorruptManifest(path, "truncated run member list");
    }
    std::vector<TupleId>* out =
        full != nullptr ? &full->run_ids[static_cast<std::size_t>(r)]
                        : nullptr;
    if (out != nullptr) out->reserve(static_cast<std::size_t>(num_points));
    for (std::uint64_t i = 0; i < num_points; ++i) {
      std::uint32_t id = 0;
      cursor.ReadU32(&id);
      if (id >= next_id) {
        return CorruptManifest(path, "run member id not below next_id");
      }
      if (any_seen && id <= max_seen) {
        return CorruptManifest(path, "run member ids not strictly ascending");
      }
      max_seen = id;
      any_seen = true;
      if (out != nullptr) out->push_back(id);
    }
    info->runs.push_back(TieredManifestRunInfo{uid, tier, num_points,
                                               std::move(file)});
  }

  // Memtable ids continue the ascending order (the memtable holds the
  // newest ids) and its rows follow as raw doubles.
  if (cursor.remaining() < memtable_rows * 4) {
    return CorruptManifest(path, "truncated memtable id list");
  }
  if (full != nullptr) {
    full->memtable_ids.reserve(static_cast<std::size_t>(memtable_rows));
  }
  for (std::uint64_t i = 0; i < memtable_rows; ++i) {
    std::uint32_t id = 0;
    cursor.ReadU32(&id);
    if (id >= next_id) {
      return CorruptManifest(path, "memtable id not below next_id");
    }
    if (any_seen && id <= max_seen) {
      return CorruptManifest(path, "memtable ids not above run ids");
    }
    max_seen = id;
    any_seen = true;
    if (full != nullptr) full->memtable_ids.push_back(id);
  }
  if (cursor.remaining() < memtable_rows * dim * 8) {
    return CorruptManifest(path, "truncated memtable rows");
  }
  for (std::uint64_t i = 0; i < memtable_rows * dim; ++i) {
    double v = 0.0;
    cursor.ReadF64(&v);
    if (full != nullptr) full->memtable_rows.push_back(v);
  }

  // Tombstones: strictly ascending; membership in a run is checked by
  // the loader against the materialized id lists.
  if (cursor.remaining() < num_tombstones * 4) {
    return CorruptManifest(path, "truncated tombstone list");
  }
  TupleId prev_tomb = 0;
  for (std::uint64_t i = 0; i < num_tombstones; ++i) {
    std::uint32_t id = 0;
    cursor.ReadU32(&id);
    if (id >= next_id) {
      return CorruptManifest(path, "tombstone id not below next_id");
    }
    if (i > 0 && id <= prev_tomb) {
      return CorruptManifest(path, "tombstone ids not strictly ascending");
    }
    prev_tomb = id;
    if (full != nullptr) full->tombstones.push_back(id);
  }
  if (cursor.remaining() != 0) {
    return CorruptManifest(path, "trailing bytes");
  }
  return Status::Ok();
}

// Removes "<base>.run-*" siblings of the manifest that the just-written
// manifest does not reference (leftovers of compacted-away runs or a
// torn earlier save). Best-effort: sweep failures are ignored -- stray
// files are garbage, not corruption.
void SweepStrayRunFiles(const std::string& manifest_path,
                        const std::vector<std::string>& referenced) {
  const std::string dir = DirOf(manifest_path);
  const std::string prefix = BaseOf(manifest_path) + ".run-";
  DIR* handle = opendir(dir.empty() ? "." : dir.c_str());
  if (handle == nullptr) return;
  std::vector<std::string> strays;
  while (dirent* entry = readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.rfind(prefix, 0) != 0) continue;
    if (std::find(referenced.begin(), referenced.end(), name) !=
        referenced.end()) {
      continue;
    }
    strays.push_back(dir + name);
  }
  closedir(handle);
  for (const std::string& stray : strays) std::remove(stray.c_str());
}

}  // namespace

// Friend of TieredDualLayerIndex: assembles a loaded index from parsed
// manifest state + run snapshots, re-deriving everything that is not
// persisted (bounds, dead counts).
class TieredIndexIO {
 public:
  static StatusOr<TieredDualLayerIndex> Assemble(
      const std::string& path, ParsedManifest parsed,
      const TieredLoadOptions& options) {
    const TieredManifestInfo& info = parsed.info;
    TieredIndexOptions opts = options.options;
    if (!info.name.empty()) opts.name = info.name;
    TieredDualLayerIndex index(info.dim, opts);

    const std::string dir = DirOf(path);
    index.runs_.reserve(info.runs.size());
    for (std::size_t r = 0; r < info.runs.size(); ++r) {
      const std::string run_path = dir + info.runs[r].file;
      StatusOr<DualLayerIndex> run =
          LoadDualLayerIndex(run_path, options.snapshot);
      if (!run.ok()) return run.status();
      if (run.value().points().dim() != info.dim) {
        return Status::Corruption("run " + run_path +
                                  ": dim does not match manifest");
      }
      if (run.value().size() != info.runs[r].num_points) {
        return Status::Corruption("run " + run_path +
                                  ": cardinality does not match manifest");
      }
      TieredRun loaded{info.runs[r].uid, info.runs[r].tier,
                       std::move(run).value(), std::move(parsed.run_ids[r]),
                       0, {}};
      index.ComputeRunBound(&loaded);
      index.runs_.push_back(std::move(loaded));
    }

    index.memtable_ids_ = std::move(parsed.memtable_ids);
    index.memtable_.Reserve(index.memtable_ids_.size());
    for (std::size_t i = 0; i < index.memtable_ids_.size(); ++i) {
      index.memtable_.Add(
          PointView(&parsed.memtable_rows[i * info.dim], info.dim));
    }

    // Tombstones must resolve to run members (memtable deletes are
    // applied in place, so a tombstone naming a memtable or unknown id
    // means the manifest lies); dead counts are re-derived here.
    for (const TupleId id : parsed.tombstones) {
      const std::size_t slot = index.RunSlotOf(id);
      if (slot == static_cast<std::size_t>(-1)) {
        return CorruptManifest(path, "tombstone " + std::to_string(id) +
                                         " is not a run member");
      }
      index.tombstones_.insert(id);
      ++index.runs_[slot].dead;
    }

    index.next_id_ = static_cast<TupleId>(info.next_id);
    index.next_run_uid_ = static_cast<std::uint32_t>(info.next_run_uid);
    index.generation_ = info.generation;
    return index;
  }
};

std::string TieredRunFilePath(const std::string& manifest_path,
                              std::uint32_t uid) {
  char suffix[20];
  std::snprintf(suffix, sizeof(suffix), ".run-%06u", uid);
  return manifest_path + suffix;
}

Status SaveTieredIndex(const TieredDualLayerIndex& index,
                       const std::string& path,
                       const TieredSaveOptions& options) {
  if (options.write_order != nullptr) options.write_order->clear();
  // Runs first, manifest last: the manifest only ever points at fully
  // committed run snapshots, and run file names embed the uid, so a
  // newer generation never overwrites a file an older manifest still
  // references.
  std::vector<std::string> referenced;
  for (std::size_t r = 0; r < index.num_runs(); ++r) {
    const TieredRun& run = index.run(r);
    const std::string run_path = TieredRunFilePath(path, run.uid);
    const Status status =
        SaveDualLayerIndex(run.index, run_path, options.snapshot);
    if (!status.ok()) return status;
    referenced.push_back(BaseOf(run_path));
    if (options.write_order != nullptr) {
      options.write_order->push_back(run_path);
    }
  }

  std::string bytes;
  AppendU32(&bytes, tiered_manifest::kMagic);
  AppendU32(&bytes, tiered_manifest::kVersion);
  AppendU32(&bytes, static_cast<std::uint32_t>(index.dim()));
  AppendU32(&bytes, 0);  // reserved
  AppendU64(&bytes, index.generation());
  AppendU64(&bytes, index.next_id());
  AppendU64(&bytes, index.next_run_uid());
  AppendU64(&bytes, index.num_runs());
  AppendU64(&bytes, index.memtable_size());
  AppendU64(&bytes, index.tombstone_count());
  AppendU64(&bytes, 0);  // flags
  const std::string name = index.options().name;
  AppendU64(&bytes, name.size());
  bytes.append(name);
  for (std::size_t r = 0; r < index.num_runs(); ++r) {
    const TieredRun& run = index.run(r);
    AppendU32(&bytes, run.uid);
    AppendU32(&bytes, run.tier);
    AppendU64(&bytes, run.ids.size());
    const std::string file = referenced[r];
    AppendU64(&bytes, file.size());
    bytes.append(file);
    for (const TupleId id : run.ids) AppendU32(&bytes, id);
  }
  for (const TupleId id : index.memtable_ids()) AppendU32(&bytes, id);
  for (std::size_t i = 0; i < index.memtable_size(); ++i) {
    const PointView row = index.memtable()[i];
    for (std::size_t d = 0; d < index.dim(); ++d) AppendF64(&bytes, row[d]);
  }
  std::vector<TupleId> tombs(index.tombstones().begin(),
                             index.tombstones().end());
  std::sort(tombs.begin(), tombs.end());
  for (const TupleId id : tombs) AppendU32(&bytes, id);
  AppendU32(&bytes, Crc32c(bytes.data(), bytes.size()));
  const Status status = WriteFileAtomic(path, bytes);
  if (!status.ok()) return status;
  if (options.write_order != nullptr) options.write_order->push_back(path);
  if (options.sweep_strays) SweepStrayRunFiles(path, referenced);
  return Status::Ok();
}

StatusOr<TieredDualLayerIndex> LoadTieredIndex(
    const std::string& path, const TieredLoadOptions& options) {
  StatusOr<std::string> bytes = ReadWholeFile(path);
  if (!bytes.ok()) return bytes.status();
  ParsedManifest parsed;
  {
    const Status status =
        ParseManifest(path, bytes.value(), &parsed.info, &parsed);
    if (!status.ok()) return status;
  }
  return TieredIndexIO::Assemble(path, std::move(parsed), options);
}

bool IsTieredManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char bytes[4];
  if (!in.read(bytes, 4)) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes, 4);
  return magic == tiered_manifest::kMagic;  // little-endian build targets
}

StatusOr<TieredManifestInfo> InspectTieredManifest(const std::string& path) {
  StatusOr<std::string> bytes = ReadWholeFile(path);
  if (!bytes.ok()) return bytes.status();
  TieredManifestInfo info;
  const Status status = ParseManifest(path, bytes.value(), &info, nullptr);
  if (!status.ok()) return status;
  return info;
}

}  // namespace drli
