// Read-only memory-mapped file with shared ownership. The zero-copy
// snapshot loader (core/serialization, format v2) points PointSet /
// CsrGraph views directly at the mapping; each view holds a
// shared_ptr<MmapFile> keepalive, so the mapping lives exactly as long
// as the last structure referencing it -- the index can outlive the
// loader, move across threads, or be destroyed in any order.

#ifndef DRLI_STORAGE_MMAP_FILE_H_
#define DRLI_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace drli {

class MmapFile {
 public:
  // Maps `path` read-only (MAP_PRIVATE). An empty file maps to
  // data() == nullptr, size() == 0.
  static StatusOr<std::shared_ptr<MmapFile>> Open(const std::string& path);

  // Owning-read fallback for callers that cannot (or chose not to) map:
  // reads the whole file through plain read(2), retrying interrupted
  // and short reads (EINTR, signal-truncated transfers) until EOF.
  // Errors carry the failing call and errno detail in the Status
  // message -- never a bare kIoError.
  static StatusOr<std::vector<std::uint8_t>> ReadFileContents(
      const std::string& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MmapFile(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace drli

#endif  // DRLI_STORAGE_MMAP_FILE_H_
