// Persistence for TieredDualLayerIndex: one standard v2 snapshot per
// run (core/serialization -- checksummed sections, atomic writes, mmap
// zero-copy loads all apply unchanged) plus a small checksummed
// generation manifest recording the dynamic state: the run table
// (uid, tier, stable-id list, file), the memtable rows, and the
// tombstone set.
//
// Manifest layout (little-endian, CRC-32C over everything before the
// trailing checksum):
//   u32 magic "DRLT"   u32 version   u32 dim   u32 reserved (0)
//   u64 generation     u64 next_id   u64 next_run_uid
//   u64 num_runs       u64 memtable_rows   u64 num_tombstones
//   u64 flags (reserved, 0)
//   u64 name_len, name bytes
//   per run: u32 uid; u32 tier; u64 num_points; u64 file_len, file
//            bytes (relative, path-separator-free); num_points x u32
//            strictly ascending stable ids
//   memtable_rows x u32 strictly ascending stable ids
//   memtable_rows x dim x f64 attribute rows (IEEE-754 bits)
//   num_tombstones x u32 strictly ascending stable ids
//   u32 crc32c
//
// Crash-recovery invariant: runs are written first (each atomically,
// temp + rename), the manifest last. A crash mid-save leaves either
// the previous manifest (whose run files were never touched -- new
// runs get fresh uid-derived names) or the new one with every run it
// references fully committed; stray run files from the torn
// generation are swept by the next successful save. The loader trusts
// nothing: every length is bounded, run id lists must be strictly
// ascending and pairwise disjoint intervals in manifest order,
// memtable ids must all exceed every run id, tombstones must resolve
// to run members, ids/uids must stay below next_id/next_run_uid, and
// every run file must parse as a valid snapshot of matching dim and
// cardinality. Run corner bounds and per-run dead counts are
// recomputed from the loaded state, never persisted. An in-flight
// compaction job is transient state and is not persisted: a save
// mid-job records the pre-install generation and loading resumes with
// compaction idle.

#ifndef DRLI_STORAGE_TIERED_IO_H_
#define DRLI_STORAGE_TIERED_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/serialization.h"
#include "core/tiered_index.h"

namespace drli {

namespace tiered_manifest {
inline constexpr std::uint32_t kMagic = 0x544c5244;  // "DRLT" LE
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kMaxRuns = 4096;
inline constexpr std::size_t kMaxNameLength = 4096;
}  // namespace tiered_manifest

struct TieredSaveOptions {
  // Format options applied to every per-run snapshot.
  SnapshotSaveOptions snapshot{};
  // When set, receives the absolute path of every file this save wrote,
  // in write order (runs first, manifest last). The crash-recovery
  // sweep replays prefixes of this list over an older generation to
  // simulate a crash between any two file commits.
  std::vector<std::string>* write_order = nullptr;
  // Remove stale "<path>.run-*" files not referenced by the manifest
  // after a successful save (leftovers of compacted-away generations
  // or torn saves). On by default.
  bool sweep_strays = true;
};

struct TieredLoadOptions {
  // Load options applied to every per-run snapshot (mmap by default).
  SnapshotLoadOptions snapshot{};
  // Maintenance knobs for the loaded index (memtable capacity, fanout,
  // auto-compaction, run build options for future seals/merges). The
  // persisted name overrides options.name when nonempty.
  TieredIndexOptions options{};
};

// The on-disk file of run `uid` for a manifest at `manifest_path`:
// "<manifest_path>.run-NNNNNN". Exposed so tests and tools can target
// individual run files (fault injection, missing-file paths).
std::string TieredRunFilePath(const std::string& manifest_path,
                              std::uint32_t uid);

// Writes every run snapshot and then the manifest, each atomically.
Status SaveTieredIndex(const TieredDualLayerIndex& index,
                       const std::string& path,
                       const TieredSaveOptions& options = {});

// Reads a manifest and all run snapshots written by SaveTieredIndex.
StatusOr<TieredDualLayerIndex> LoadTieredIndex(
    const std::string& path, const TieredLoadOptions& options = {});

// Cheap probe: does `path` start with the tiered-manifest magic? Used
// by the CLI to route --index files to the right loader.
bool IsTieredManifest(const std::string& path);

// --- manifest metadata (drli inspect, tests) ---

struct TieredManifestRunInfo {
  std::uint32_t uid = 0;
  std::uint32_t tier = 0;
  std::uint64_t num_points = 0;
  std::string file;  // relative to the manifest's directory
};

struct TieredManifestInfo {
  std::uint32_t version = 0;
  std::size_t dim = 0;
  std::uint64_t generation = 0;
  std::uint64_t next_id = 0;
  std::uint64_t next_run_uid = 0;
  std::uint64_t memtable_rows = 0;
  std::uint64_t num_tombstones = 0;
  std::string name;
  std::vector<TieredManifestRunInfo> runs;
};

// Parses and fully validates the manifest (checksum included) without
// touching the run files.
StatusOr<TieredManifestInfo> InspectTieredManifest(const std::string& path);

}  // namespace drli

#endif  // DRLI_STORAGE_TIERED_IO_H_
