// Dimension-major (structure-of-arrays) companion to the row-major
// PointSet: attribute a of all points lives in one contiguous column,
// so batched kernels (common/kernels_batch.h) can process 4-8 tuples
// per instruction with contiguous loads (ranges) or per-column gathers
// (id lists).
//
// An SoaPointSet is a derived, query-time view: indexes build one copy
// at construction time (and again after a snapshot load) and never
// persist it. Columns are padded to a multiple of kColumnPad entries so
// vector loads on a column never straddle into the next one.

#ifndef DRLI_COMMON_SOA_POINTS_H_
#define DRLI_COMMON_SOA_POINTS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/point.h"

namespace drli {

class SoaPointSet {
 public:
  // Vector-width-friendly column padding (entries, not bytes).
  static constexpr std::size_t kColumnPad = 8;

  SoaPointSet() = default;

  // Columns over all of `points`, in id order.
  static SoaPointSet FromPointSet(const PointSet& points);

  // Columns over the concatenated node space `a` then `b` (e.g. real
  // tuples followed by pseudo-tuples). Dimensions must match.
  static SoaPointSet FromPointSets(const PointSet& a, const PointSet& b);

  // Permuted concatenation: row i of the result is row order[i] of the
  // concatenated node space. Used for the traversal-ordered query
  // layout of the dual-layer index.
  static SoaPointSet FromPermutation(const PointSet& a, const PointSet& b,
                                     std::span<const std::uint32_t> order);

  // Compact subset view: row i of the result is points[ids[i]]. Used by
  // sweeps over a small working set (e.g. one skyline candidate set) so
  // batched kernels gather from dense rows instead of the full relation.
  static SoaPointSet FromSubset(const PointSet& points,
                                std::span<const std::uint32_t> ids);

  std::size_t size() const { return size_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return size_ == 0; }
  // Entries per column (>= size(), multiple of kColumnPad).
  std::size_t stride() const { return stride_; }

  // The column of attribute `attr`; entries [0, size()) are valid and
  // the padding tail is zero-filled.
  const double* column(std::size_t attr) const {
    DRLI_DCHECK(attr < dim_);
    return values_.data() + attr * stride_;
  }

  double at(std::size_t i, std::size_t attr) const {
    DRLI_DCHECK(i < size_);
    return column(attr)[i];
  }

 private:
  SoaPointSet(std::size_t dim, std::size_t size);

  std::size_t dim_ = 0;
  std::size_t size_ = 0;
  std::size_t stride_ = 0;
  std::vector<double> values_;  // dim_ columns of stride_ entries
};

}  // namespace drli

#endif  // DRLI_COMMON_SOA_POINTS_H_
