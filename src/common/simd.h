// Runtime CPU-feature dispatch for the batched point kernels
// (common/kernels_batch.h). The active target is resolved once per
// process from compile-time probes plus a runtime CPUID check, and can
// be forced down to the scalar fallback for A/B debugging:
//
//   * build time:  -DDRLI_DISABLE_SIMD=ON compiles the library without
//     any SIMD translation unit; the dispatcher always reports kScalar.
//   * process:     DRLI_NO_SIMD=1 in the environment.
//   * runtime:     ForceScalarKernels(true) (drli --no-simd, tests).
//
// Every batched kernel is bit-identical to its scalar counterpart, so
// flipping the target is purely a performance knob -- results, tie
// handling and the Definition-9 evaluation counts never change.

#ifndef DRLI_COMMON_SIMD_H_
#define DRLI_COMMON_SIMD_H_

namespace drli {

enum class SimdTarget {
  kScalar,
  kAvx2,
  kNeon,
};

// The dispatch target batched kernels will use for the next call.
// Resolved from the strongest compiled-in implementation the CPU
// supports, unless scalar has been forced (see above).
SimdTarget ActiveSimdTarget();

// Display name: "scalar", "avx2", "neon".
const char* SimdTargetName(SimdTarget target);

// Forces (or un-forces) the scalar fallback at runtime. Overrides both
// the CPU probe and the DRLI_NO_SIMD environment knob. Not thread-safe
// against concurrent queries; call during setup.
void ForceScalarKernels(bool force);

// The strongest target this binary could use on this CPU, ignoring any
// forcing -- what ActiveSimdTarget() would report with forcing off.
SimdTarget CompiledSimdTarget();

}  // namespace drli

#endif  // DRLI_COMMON_SIMD_H_
