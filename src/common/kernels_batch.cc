#include "common/kernels_batch.h"

#include "common/check.h"
#include "common/simd.h"

namespace drli {

namespace kernel_internal {

namespace {

// One SoA row through the exact operation chain of Score() in
// common/point.h: the unrolled d <= 4 kernels start the accumulator at
// w0*p0, the generic d >= 5 loop starts at 0.0 -- mirror both so the
// result is bit-identical for every d (the two differ on -0.0 inputs).
inline double ScoreRow(PointView weights, const SoaPointSet& soa,
                       std::size_t row) {
  const std::size_t d = soa.dim();
  double acc;
  std::size_t a;
  if (d <= 4) {
    acc = weights[0] * soa.column(0)[row];
    a = 1;
  } else {
    acc = 0.0;
    a = 0;
  }
  for (; a < d; ++a) {
    acc += weights[a] * soa.column(a)[row];
  }
  return acc;
}

}  // namespace

void ScoreBatchScalar(PointView weights, const SoaPointSet& soa,
                      const std::uint32_t* ids, std::size_t count,
                      double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = ScoreRow(weights, soa, ids[i]);
  }
}

void ScoreRangeScalar(PointView weights, const SoaPointSet& soa,
                      std::uint32_t first, std::size_t count, double* out) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = ScoreRow(weights, soa, first + i);
  }
}

bool DominatesAnyBatchScalar(const SoaPointSet& soa, const std::uint32_t* ids,
                             std::size_t count, PointView q) {
  const std::size_t d = soa.dim();
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t row = ids[i];
    bool le = true;
    bool lt = false;
    for (std::size_t a = 0; a < d; ++a) {
      const double v = soa.column(a)[row];
      le = le && v <= q[a];
      lt = lt || v < q[a];
    }
    if (le && lt) return true;
  }
  return false;
}

void CompareBatchScalar(const SoaPointSet& soa, const std::uint32_t* ids,
                        std::size_t count, PointView q, DomRel* out) {
  const std::size_t d = soa.dim();
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t row = ids[i];
    bool a_better = false;
    bool b_better = false;
    for (std::size_t a = 0; a < d; ++a) {
      const double v = soa.column(a)[row];
      a_better |= v < q[a];
      b_better |= v > q[a];
    }
    out[i] = a_better && b_better ? DomRel::kIncomparable
             : a_better           ? DomRel::kDominates
             : b_better           ? DomRel::kDominatedBy
                                  : DomRel::kEqual;
  }
}

}  // namespace kernel_internal

ScoreBatchFn ResolveScoreBatch() {
  switch (ActiveSimdTarget()) {
#if defined(DRLI_HAVE_AVX2)
    case SimdTarget::kAvx2:
      return &kernel_internal::ScoreBatchAvx2;
#endif
#if defined(DRLI_HAVE_NEON)
    case SimdTarget::kNeon:
      return &kernel_internal::ScoreBatchNeon;
#endif
    default:
      return &kernel_internal::ScoreBatchScalar;
  }
}

void ScoreBatch(PointView weights, const SoaPointSet& soa,
                const std::uint32_t* ids, std::size_t count, double* out) {
  DRLI_DCHECK(weights.size() == soa.dim());
  ResolveScoreBatch()(weights, soa, ids, count, out);
}

void ScoreRange(PointView weights, const SoaPointSet& soa,
                std::uint32_t first, std::size_t count, double* out) {
  DRLI_DCHECK(weights.size() == soa.dim());
  DRLI_DCHECK(first + count <= soa.size());
  switch (ActiveSimdTarget()) {
#if defined(DRLI_HAVE_AVX2)
    case SimdTarget::kAvx2:
      kernel_internal::ScoreRangeAvx2(weights, soa, first, count, out);
      return;
#endif
#if defined(DRLI_HAVE_NEON)
    case SimdTarget::kNeon:
      kernel_internal::ScoreRangeNeon(weights, soa, first, count, out);
      return;
#endif
    default:
      kernel_internal::ScoreRangeScalar(weights, soa, first, count, out);
      return;
  }
}

bool DominatesAnyBatch(const SoaPointSet& soa, const std::uint32_t* ids,
                       std::size_t count, PointView q) {
  DRLI_DCHECK(q.size() == soa.dim());
  switch (ActiveSimdTarget()) {
#if defined(DRLI_HAVE_AVX2)
    case SimdTarget::kAvx2:
      return kernel_internal::DominatesAnyBatchAvx2(soa, ids, count, q);
#endif
#if defined(DRLI_HAVE_NEON)
    case SimdTarget::kNeon:
      return kernel_internal::DominatesAnyBatchNeon(soa, ids, count, q);
#endif
    default:
      return kernel_internal::DominatesAnyBatchScalar(soa, ids, count, q);
  }
}

void CompareBatch(const SoaPointSet& soa, const std::uint32_t* ids,
                  std::size_t count, PointView q, DomRel* out) {
  DRLI_DCHECK(q.size() == soa.dim());
  switch (ActiveSimdTarget()) {
#if defined(DRLI_HAVE_AVX2)
    case SimdTarget::kAvx2:
      kernel_internal::CompareBatchAvx2(soa, ids, count, q, out);
      return;
#endif
#if defined(DRLI_HAVE_NEON)
    case SimdTarget::kNeon:
      kernel_internal::CompareBatchNeon(soa, ids, count, q, out);
      return;
#endif
    default:
      kernel_internal::CompareBatchScalar(soa, ids, count, q, out);
      return;
  }
}

}  // namespace drli
