#include "common/csr.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace drli {

CsrGraph CsrGraph::FromAdjacency(
    const std::vector<std::vector<NodeId>>& adjacency) {
  CsrGraph graph;
  std::size_t total = 0;
  for (const auto& list : adjacency) total += list.size();
  DRLI_CHECK(total <= std::numeric_limits<std::uint32_t>::max())
      << "edge count overflows 32-bit CSR offsets";

  graph.offsets_vec_.reserve(adjacency.size() + 1);
  graph.targets_vec_.reserve(total);
  graph.offsets_vec_.push_back(0);
  for (const auto& list : adjacency) {
    graph.targets_vec_.insert(graph.targets_vec_.end(), list.begin(),
                              list.end());
    graph.offsets_vec_.push_back(
        static_cast<std::uint32_t>(graph.targets_vec_.size()));
  }
  return graph;
}

CsrGraph CsrGraph::FromVectors(std::vector<std::uint32_t> offsets,
                               std::vector<NodeId> targets) {
  DRLI_CHECK(offsets.empty() ||
             (offsets.front() == 0 && offsets.back() == targets.size()));
  CsrGraph graph;
  graph.offsets_vec_ = std::move(offsets);
  graph.targets_vec_ = std::move(targets);
  return graph;
}

CsrGraph CsrGraph::FromViews(std::span<const std::uint32_t> offsets,
                             std::span<const NodeId> targets,
                             std::shared_ptr<const void> keepalive) {
  DRLI_CHECK(offsets.empty()
                 ? targets.empty()
                 : offsets.front() == 0 && offsets.back() == targets.size());
  CsrGraph graph;
  graph.view_offsets_ = offsets.empty() ? nullptr : offsets.data();
  graph.view_targets_ = targets.data();
  graph.view_num_offsets_ = offsets.size();
  graph.view_num_targets_ = targets.size();
  graph.keepalive_ = std::move(keepalive);
  // An empty view degenerates to an (empty) owning graph, which keeps
  // the owns_data() discriminator (view_offsets_ != nullptr) honest.
  return graph;
}

bool CsrGraph::operator==(const CsrGraph& other) const {
  return std::ranges::equal(offsets(), other.offsets()) &&
         std::ranges::equal(targets(), other.targets());
}

}  // namespace drli
