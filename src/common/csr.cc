#include "common/csr.h"

#include <limits>

#include "common/check.h"

namespace drli {

CsrGraph CsrGraph::FromAdjacency(
    const std::vector<std::vector<NodeId>>& adjacency) {
  CsrGraph graph;
  std::size_t total = 0;
  for (const auto& list : adjacency) total += list.size();
  DRLI_CHECK(total <= std::numeric_limits<std::uint32_t>::max())
      << "edge count overflows 32-bit CSR offsets";

  graph.offsets_.reserve(adjacency.size() + 1);
  graph.targets_.reserve(total);
  graph.offsets_.push_back(0);
  for (const auto& list : adjacency) {
    graph.targets_.insert(graph.targets_.end(), list.begin(), list.end());
    graph.offsets_.push_back(static_cast<std::uint32_t>(graph.targets_.size()));
  }
  return graph;
}

}  // namespace drli
