// Compressed-sparse-row adjacency: one offsets array plus one flat
// target array, replacing vector<vector<NodeId>> in the query engine's
// hot loops. A node's successor list is a contiguous span, so the
// best-first traversal touches two cache lines per expansion instead of
// chasing a pointer per node, and the whole graph is two allocations.
//
// Like PointSet, a CsrGraph is either owning (built from adjacency
// lists) or view-backed (borrowed spans over an mmap-ed snapshot
// section, guarded by a shared keepalive). Readers see one interface.

#ifndef DRLI_COMMON_CSR_H_
#define DRLI_COMMON_CSR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace drli {

class CsrGraph {
 public:
  using NodeId = std::uint32_t;

  CsrGraph() = default;

  // Flattens build-time adjacency lists; per-node edge order is kept.
  static CsrGraph FromAdjacency(
      const std::vector<std::vector<NodeId>>& adjacency);

  // Owning graph adopting pre-built CSR arrays. Requires a well-formed
  // shape: offsets empty (zero nodes) or offsets.front() == 0 and
  // offsets.back() == targets.size() with non-decreasing entries.
  static CsrGraph FromVectors(std::vector<std::uint32_t> offsets,
                              std::vector<NodeId> targets);

  // View-backed graph over external CSR arrays, which must stay valid
  // for as long as `keepalive` is held (typically the mmap of a
  // snapshot file). The caller is responsible for having validated the
  // same shape requirements as FromVectors.
  static CsrGraph FromViews(std::span<const std::uint32_t> offsets,
                            std::span<const NodeId> targets,
                            std::shared_ptr<const void> keepalive);

  std::size_t num_nodes() const {
    const std::size_t n = num_offsets();
    return n == 0 ? 0 : n - 1;
  }
  // Vector-compatible alias so callers can iterate [0, size()).
  std::size_t size() const { return num_nodes(); }
  std::size_t num_edges() const { return num_targets(); }
  bool owns_data() const { return view_offsets_ == nullptr; }

  std::span<const NodeId> operator[](std::size_t node) const {
    const std::uint32_t* off = offsets_base();
    return std::span<const NodeId>(targets_base() + off[node],
                                   off[node + 1] - off[node]);
  }

  // Element-wise equality (independent of storage mode).
  bool operator==(const CsrGraph& other) const;

  // Raw arrays, for serialization and tests.
  std::span<const std::uint32_t> offsets() const {
    return std::span<const std::uint32_t>(offsets_base(), num_offsets());
  }
  std::span<const NodeId> targets() const {
    return std::span<const NodeId>(targets_base(), num_targets());
  }

 private:
  const std::uint32_t* offsets_base() const {
    return view_offsets_ != nullptr ? view_offsets_ : offsets_vec_.data();
  }
  const NodeId* targets_base() const {
    return view_offsets_ != nullptr ? view_targets_ : targets_vec_.data();
  }
  std::size_t num_offsets() const {
    return view_offsets_ != nullptr ? view_num_offsets_ : offsets_vec_.size();
  }
  std::size_t num_targets() const {
    return view_offsets_ != nullptr ? view_num_targets_ : targets_vec_.size();
  }

  // Owning mode: offsets_vec_[i]..offsets_vec_[i+1] index into
  // targets_vec_; size num_nodes+1 (empty when the graph has no nodes).
  std::vector<std::uint32_t> offsets_vec_;
  std::vector<NodeId> targets_vec_;
  // View mode; view_offsets_ null in owning mode.
  const std::uint32_t* view_offsets_ = nullptr;
  const NodeId* view_targets_ = nullptr;
  std::size_t view_num_offsets_ = 0;
  std::size_t view_num_targets_ = 0;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace drli

#endif  // DRLI_COMMON_CSR_H_
