// Compressed-sparse-row adjacency: one offsets array plus one flat
// target array, replacing vector<vector<NodeId>> in the query engine's
// hot loops. A node's successor list is a contiguous span, so the
// best-first traversal touches two cache lines per expansion instead of
// chasing a pointer per node, and the whole graph is two allocations.

#ifndef DRLI_COMMON_CSR_H_
#define DRLI_COMMON_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

namespace drli {

class CsrGraph {
 public:
  using NodeId = std::uint32_t;

  CsrGraph() = default;

  // Flattens build-time adjacency lists; per-node edge order is kept.
  static CsrGraph FromAdjacency(
      const std::vector<std::vector<NodeId>>& adjacency);

  std::size_t num_nodes() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  // Vector-compatible alias so callers can iterate [0, size()).
  std::size_t size() const { return num_nodes(); }
  std::size_t num_edges() const { return targets_.size(); }

  std::span<const NodeId> operator[](std::size_t node) const {
    return std::span<const NodeId>(targets_.data() + offsets_[node],
                                   offsets_[node + 1] - offsets_[node]);
  }

  bool operator==(const CsrGraph&) const = default;

  // Raw arrays, for serialization and tests.
  const std::vector<std::uint32_t>& offsets() const { return offsets_; }
  const std::vector<NodeId>& targets() const { return targets_; }

 private:
  // offsets_[i]..offsets_[i+1] index into targets_; size num_nodes+1
  // (empty when the graph has no nodes).
  std::vector<std::uint32_t> offsets_;
  std::vector<NodeId> targets_;
};

}  // namespace drli

#endif  // DRLI_COMMON_CSR_H_
