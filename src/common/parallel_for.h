// Minimal fork-join parallelism for the query engine and index build:
// a std::thread task pool with dynamic (atomic-counter) work claiming,
// so unevenly sized items -- queries of different depth, coarse layers
// of different cardinality -- balance across workers.
//
// Thread count resolution (ParallelThreadCount): the DRLI_THREADS
// environment variable when set to a positive integer, otherwise
// std::thread::hardware_concurrency(). Callers may also pass an
// explicit count. With 0 or 1 workers (or n <= 1 items) the loop runs
// inline on the calling thread -- no threads are spawned, which keeps
// single-threaded determinism trivially intact. The effective worker
// count is additionally clamped to hardware_concurrency: requesting
// more workers than cores cannot help a CPU-bound loop, and because
// items are claimed dynamically the clamp is invisible in results.

#ifndef DRLI_COMMON_PARALLEL_FOR_H_
#define DRLI_COMMON_PARALLEL_FOR_H_

#include <cstddef>
#include <functional>

namespace drli {

// Worker count from DRLI_THREADS, else hardware_concurrency (>= 1).
// Reads the environment on every call so tests can flip DRLI_THREADS
// between phases of one process.
std::size_t ParallelThreadCount();

// Runs fn(item, worker) for every item in [0, n). Items are claimed
// dynamically; `worker` is a stable id in [0, workers) usable to index
// per-thread state (e.g. one QueryScratch per worker). `threads` == 0
// means ParallelThreadCount(). The first exception thrown by any fn is
// rethrown on the calling thread after all workers join.
void ParallelFor(std::size_t n,
                 const std::function<void(std::size_t item,
                                          std::size_t worker)>& fn,
                 std::size_t threads = 0);

}  // namespace drli

#endif  // DRLI_COMMON_PARALLEL_FOR_H_
