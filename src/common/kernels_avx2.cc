// AVX2 implementations of the batched point kernels: 4 tuples per
// iteration, one SIMD lane per tuple (vertical vectorization).
//
// Bit-identity notes:
//   * Each lane accumulates its tuple's score strictly left-to-right
//     (w0*p0, + w1*p1, ...), exactly the scalar association. There is
//     no horizontal reduction across lanes.
//   * Multiplies and adds are separate intrinsics and this translation
//     unit is compiled with -ffp-contract=off, so the compiler cannot
//     fuse them into FMAs (which would round differently).
//   * d <= 4 seeds the accumulator with the first product while d >= 5
//     seeds with 0.0, mirroring the unrolled-vs-generic split of
//     common/point.h (the two differ on -0.0 inputs).
//   * Dominance/comparison kernels are exact predicates (ordered,
//     non-signalling compares on NaN-free input).
//
// This file is only added to the build when the compiler supports
// -mavx2 and DRLI_DISABLE_SIMD is off; callers reach it through the
// runtime dispatch in kernels_batch.cc, never directly.

#include <immintrin.h>

#include "common/kernels_batch.h"

namespace drli {
namespace kernel_internal {

namespace {

// Gathers the 4 values of column `col` at the 4 row indexes in `rows`.
// The masked form with a zeroed source avoids _mm256_undefined_pd,
// which GCC flags as maybe-uninitialized; the all-ones mask makes it
// behave exactly like the plain gather.
inline __m256d GatherColumn(const double* col, __m128i rows) {
  const __m256d ones_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  return _mm256_mask_i32gather_pd(_mm256_setzero_pd(), col, rows, ones_mask,
                                  sizeof(double));
}

// Per-lane left-to-right weighted sum of 4 rows given by `rows`.
inline __m256d ScoreLanesGather(PointView w, const SoaPointSet& soa,
                                __m128i rows) {
  const std::size_t d = soa.dim();
  __m256d acc;
  std::size_t a;
  if (d <= 4) {
    acc = _mm256_mul_pd(_mm256_set1_pd(w[0]),
                        GatherColumn(soa.column(0), rows));
    a = 1;
  } else {
    acc = _mm256_setzero_pd();
    a = 0;
  }
  for (; a < d; ++a) {
    acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(w[a]),
                                           GatherColumn(soa.column(a), rows)));
  }
  return acc;
}

inline __m256d ScoreLanesLoad(PointView w, const SoaPointSet& soa,
                              std::size_t first) {
  const std::size_t d = soa.dim();
  __m256d acc;
  std::size_t a;
  if (d <= 4) {
    acc = _mm256_mul_pd(_mm256_set1_pd(w[0]),
                        _mm256_loadu_pd(soa.column(0) + first));
    a = 1;
  } else {
    acc = _mm256_setzero_pd();
    a = 0;
  }
  for (; a < d; ++a) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_set1_pd(w[a]),
                           _mm256_loadu_pd(soa.column(a) + first)));
  }
  return acc;
}

}  // namespace

void ScoreBatchAvx2(PointView weights, const SoaPointSet& soa,
                    const std::uint32_t* ids, std::size_t count, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i rows =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    _mm256_storeu_pd(out + i, ScoreLanesGather(weights, soa, rows));
  }
  if (i < count) {
    ScoreBatchScalar(weights, soa, ids + i, count - i, out + i);
  }
}

void ScoreRangeAvx2(PointView weights, const SoaPointSet& soa,
                    std::uint32_t first, std::size_t count, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    _mm256_storeu_pd(out + i, ScoreLanesLoad(weights, soa, first + i));
  }
  if (i < count) {
    ScoreRangeScalar(weights, soa, first + i, count - i, out + i);
  }
}

bool DominatesAnyBatchAvx2(const SoaPointSet& soa, const std::uint32_t* ids,
                           std::size_t count, PointView q) {
  const std::size_t d = soa.dim();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i rows =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    // le: candidate <= q in every attribute; lt: < in at least one.
    __m256d le = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    __m256d lt = _mm256_setzero_pd();
    for (std::size_t a = 0; a < d; ++a) {
      const __m256d v = GatherColumn(soa.column(a), rows);
      const __m256d qa = _mm256_set1_pd(q[a]);
      le = _mm256_and_pd(le, _mm256_cmp_pd(v, qa, _CMP_LE_OQ));
      lt = _mm256_or_pd(lt, _mm256_cmp_pd(v, qa, _CMP_LT_OQ));
    }
    if (_mm256_movemask_pd(_mm256_and_pd(le, lt)) != 0) return true;
  }
  return i < count && DominatesAnyBatchScalar(soa, ids + i, count - i, q);
}

void CompareBatchAvx2(const SoaPointSet& soa, const std::uint32_t* ids,
                      std::size_t count, PointView q, DomRel* out) {
  const std::size_t d = soa.dim();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i rows =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    __m256d a_better = _mm256_setzero_pd();
    __m256d b_better = _mm256_setzero_pd();
    for (std::size_t a = 0; a < d; ++a) {
      const __m256d v = GatherColumn(soa.column(a), rows);
      const __m256d qa = _mm256_set1_pd(q[a]);
      a_better = _mm256_or_pd(a_better, _mm256_cmp_pd(v, qa, _CMP_LT_OQ));
      b_better = _mm256_or_pd(b_better, _mm256_cmp_pd(v, qa, _CMP_GT_OQ));
    }
    const int am = _mm256_movemask_pd(a_better);
    const int bm = _mm256_movemask_pd(b_better);
    for (int lane = 0; lane < 4; ++lane) {
      const bool ab = (am >> lane) & 1;
      const bool bb = (bm >> lane) & 1;
      out[i + lane] = ab && bb ? DomRel::kIncomparable
                      : ab     ? DomRel::kDominates
                      : bb     ? DomRel::kDominatedBy
                               : DomRel::kEqual;
    }
  }
  if (i < count) {
    CompareBatchScalar(soa, ids + i, count - i, q, out + i);
  }
}

}  // namespace kernel_internal
}  // namespace drli
