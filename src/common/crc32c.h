// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78): the payload
// checksum of snapshot format v2 (core/serialization). Software
// slice-by-8 implementation -- ~1 byte/cycle, no SSE4.2 requirement --
// so checksums are identical across every build target.

#ifndef DRLI_COMMON_CRC32C_H_
#define DRLI_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace drli {

// CRC-32C of `size` bytes starting at `data`. `seed` chains incremental
// computation: Crc32c(p, a + b) == Crc32c(p + a, b, Crc32c(p, a)).
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace drli

#endif  // DRLI_COMMON_CRC32C_H_
