#include "common/crc32c.h"

#include <array>
#include <cstring>

namespace drli {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected 0x1EDC6F41

struct Tables {
  // table[0] is the classic byte-at-a-time table; tables 1..7 extend it
  // to slice-by-8 (each table shifts the previous one by one byte).
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& t = GetTables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;

  while (size > 0 &&
         (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  while (size >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);  // p is 8-aligned here; memcpy for form
    chunk ^= crc;               // little-endian: crc folds into low bytes
    crc = t[7][chunk & 0xFFu] ^ t[6][(chunk >> 8) & 0xFFu] ^
          t[5][(chunk >> 16) & 0xFFu] ^ t[4][(chunk >> 24) & 0xFFu] ^
          t[3][(chunk >> 32) & 0xFFu] ^ t[2][(chunk >> 40) & 0xFFu] ^
          t[1][(chunk >> 48) & 0xFFu] ^ t[0][(chunk >> 56) & 0xFFu];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  return ~crc;
}

}  // namespace drli
