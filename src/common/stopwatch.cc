#include "common/stopwatch.h"

namespace drli {

double Stopwatch::ElapsedSeconds() const {
  const auto delta = Clock::now() - start_;
  return std::chrono::duration<double>(delta).count();
}

}  // namespace drli
