#include "common/simd.h"

#include <atomic>
#include <cstdlib>

namespace drli {

namespace {

SimdTarget ProbeTarget() {
#if defined(DRLI_DISABLE_SIMD)
  return SimdTarget::kScalar;
#else
#if defined(DRLI_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return SimdTarget::kAvx2;
#endif
#if defined(DRLI_HAVE_NEON)
  // NEON is baseline on aarch64: no runtime probe needed.
  return SimdTarget::kNeon;
#endif
  return SimdTarget::kScalar;
#endif
}

bool EnvForcesScalar() {
  const char* env = std::getenv("DRLI_NO_SIMD");
  return env != nullptr && *env != '\0' && *env != '0';
}

// -1 = follow DRLI_NO_SIMD, 0 = SIMD allowed, 1 = scalar forced.
std::atomic<int> g_force_scalar{-1};

}  // namespace

SimdTarget CompiledSimdTarget() {
  static const SimdTarget target = ProbeTarget();
  return target;
}

SimdTarget ActiveSimdTarget() {
  const int force = g_force_scalar.load(std::memory_order_relaxed);
  if (force == 1) return SimdTarget::kScalar;
  if (force == -1) {
    static const bool env_scalar = EnvForcesScalar();
    if (env_scalar) return SimdTarget::kScalar;
  }
  return CompiledSimdTarget();
}

void ForceScalarKernels(bool force) {
  g_force_scalar.store(force ? 1 : 0, std::memory_order_relaxed);
}

const char* SimdTargetName(SimdTarget target) {
  switch (target) {
    case SimdTarget::kScalar:
      return "scalar";
    case SimdTarget::kAvx2:
      return "avx2";
    case SimdTarget::kNeon:
      return "neon";
  }
  return "unknown";
}

}  // namespace drli
