// Wall-clock stopwatch used by the construction-time benchmarks
// (Table IV) and examples.

#ifndef DRLI_COMMON_STOPWATCH_H_
#define DRLI_COMMON_STOPWATCH_H_

#include <chrono>

namespace drli {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  // Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  // Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const;

  // Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace drli

#endif  // DRLI_COMMON_STOPWATCH_H_
