// Batched score/dominance kernels over a dimension-major SoaPointSet,
// processing 4 (AVX2/NEON) tuples per iteration behind the runtime
// dispatch of common/simd.h.
//
// Bit-identity contract: every kernel computes, per tuple, exactly the
// same floating-point operations in exactly the same order as the
// scalar kernels in common/point.h -- each SIMD lane holds one tuple's
// left-to-right accumulation (w0*p0, then + w1*p1, ...), there is no
// horizontal reduction and no fused multiply-add (the SIMD translation
// units are compiled with -ffp-contract=off). Dominance and comparison
// kernels are exact predicates with no rounding at all. Consequently
// scalar and SIMD paths return bit-identical scores and identical
// predicate outcomes on every input, which KernelCrossCheckTest
// (tests/property_test.cc) verifies exhaustively and the differential
// oracle + fuzzer re-verify end to end on both dispatch targets.
//
// Inputs are assumed NaN-free (the library's data model is points in
// [0,1]^d and simplex weights); comparisons use ordered predicates.

#ifndef DRLI_COMMON_KERNELS_BATCH_H_
#define DRLI_COMMON_KERNELS_BATCH_H_

#include <cstddef>
#include <cstdint>

#include "common/point.h"
#include "common/soa_points.h"

namespace drli {

// out[i] = Score(weights, soa row ids[i]), bit-identical to the scalar
// kernel. Gathers per column; `count` may be any size (unaligned tails
// fall back to scalar lanes).
void ScoreBatch(PointView weights, const SoaPointSet& soa,
                const std::uint32_t* ids, std::size_t count, double* out);

// out[i] = Score(weights, soa row first + i): the contiguous-range
// variant used by full scans; columns are loaded, not gathered.
void ScoreRange(PointView weights, const SoaPointSet& soa,
                std::uint32_t first, std::size_t count, double* out);

// True iff Dominates(soa row ids[i], q) for at least one i -- the inner
// test of skyline window sweeps. Exact predicate, identical outcome to
// the scalar loop (which short-circuits; the batch probes 4 at a time).
bool DominatesAnyBatch(const SoaPointSet& soa, const std::uint32_t* ids,
                       std::size_t count, PointView q);

// out[i] = Compare(soa row ids[i], q), the full three-way dominance
// comparison per tuple.
void CompareBatch(const SoaPointSet& soa, const std::uint32_t* ids,
                  std::size_t count, PointView q, DomRel* out);

// Hot loops that issue many small batches (the DL heap expansion makes
// ~25 calls of ~6 tuples per query) resolve the dispatch once and call
// through the pointer, instead of paying the ActiveSimdTarget() load +
// switch on every batch.
using ScoreBatchFn = void (*)(PointView, const SoaPointSet&,
                              const std::uint32_t*, std::size_t, double*);
ScoreBatchFn ResolveScoreBatch();

namespace kernel_internal {

// Scalar reference implementations (delegate to common/point.h); the
// dispatchers fall back to these, and the cross-check tests pin the
// SIMD paths against them.
void ScoreBatchScalar(PointView weights, const SoaPointSet& soa,
                      const std::uint32_t* ids, std::size_t count,
                      double* out);
void ScoreRangeScalar(PointView weights, const SoaPointSet& soa,
                      std::uint32_t first, std::size_t count, double* out);
bool DominatesAnyBatchScalar(const SoaPointSet& soa, const std::uint32_t* ids,
                             std::size_t count, PointView q);
void CompareBatchScalar(const SoaPointSet& soa, const std::uint32_t* ids,
                        std::size_t count, PointView q, DomRel* out);

#if defined(DRLI_HAVE_AVX2)
void ScoreBatchAvx2(PointView weights, const SoaPointSet& soa,
                    const std::uint32_t* ids, std::size_t count, double* out);
void ScoreRangeAvx2(PointView weights, const SoaPointSet& soa,
                    std::uint32_t first, std::size_t count, double* out);
bool DominatesAnyBatchAvx2(const SoaPointSet& soa, const std::uint32_t* ids,
                           std::size_t count, PointView q);
void CompareBatchAvx2(const SoaPointSet& soa, const std::uint32_t* ids,
                      std::size_t count, PointView q, DomRel* out);
#endif

#if defined(DRLI_HAVE_NEON)
void ScoreBatchNeon(PointView weights, const SoaPointSet& soa,
                    const std::uint32_t* ids, std::size_t count, double* out);
void ScoreRangeNeon(PointView weights, const SoaPointSet& soa,
                    std::uint32_t first, std::size_t count, double* out);
bool DominatesAnyBatchNeon(const SoaPointSet& soa, const std::uint32_t* ids,
                           std::size_t count, PointView q);
void CompareBatchNeon(const SoaPointSet& soa, const std::uint32_t* ids,
                      std::size_t count, PointView q, DomRel* out);
#endif

}  // namespace kernel_internal

}  // namespace drli

#endif  // DRLI_COMMON_KERNELS_BATCH_H_
