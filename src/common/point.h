// Core data model: tuples as d-dimensional points in [0,1]^d and the
// dominance predicates of Section II of the paper.
//
// Storage is a flat row-major buffer (PointSet); code passes around
// PointView (a std::span) and TupleId indexes. Row-major is the
// canonical, persisted form; indexes additionally derive a
// dimension-major companion (common/soa_points.h) at construction time
// so the batched kernels of common/kernels_batch.h can sweep many
// tuples per iteration. The scalar kernels below remain the semantic
// reference: every batched kernel is bit-identical to them.

#ifndef DRLI_COMMON_POINT_H_
#define DRLI_COMMON_POINT_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace drli {

// Index of a tuple within its PointSet / relation.
using TupleId = std::uint32_t;
inline constexpr TupleId kInvalidTupleId =
    std::numeric_limits<TupleId>::max();

// Read-only view of one tuple's attribute values.
using PointView = std::span<const double>;

// Owned point, used where a materialized value is required
// (pseudo-tuples of the zero layer, generators, tests).
using Point = std::vector<double>;

// Outcome of a pairwise dominance comparison (Definition 2).
enum class DomRel {
  kDominates,     // a ≺ b
  kDominatedBy,   // b ≺ a
  kEqual,         // identical in every attribute
  kIncomparable,  // neither dominates
};

// The dominance/score kernels below sit on every build and query hot
// path (skyline peeling, ∀-edge detection, EDS tests, top-k scoring),
// so the common dimensionalities d = 2/3/4 are fully unrolled inline
// and everything else takes the generic loop. All specializations are
// exact transcriptions of the generic code -- same comparisons, same
// short-circuit order -- so results (and float semantics) are
// bit-identical across paths.

namespace point_internal {

bool DominatesGeneric(PointView a, PointView b);
bool WeaklyDominatesGeneric(PointView a, PointView b);
DomRel CompareGeneric(PointView a, PointView b);
double ScoreGeneric(PointView weights, PointView point);

}  // namespace point_internal

// Returns true iff a ≺ b: a_i <= b_i for all i and a_j < b_j for some j
// (Definition 2; lower values are better throughout the library).
inline bool Dominates(PointView a, PointView b) {
  DRLI_DCHECK(a.size() == b.size());
  const double* x = a.data();
  const double* y = b.data();
  switch (a.size()) {
    case 2:
      return x[0] <= y[0] && x[1] <= y[1] && (x[0] < y[0] || x[1] < y[1]);
    case 3:
      return x[0] <= y[0] && x[1] <= y[1] && x[2] <= y[2] &&
             (x[0] < y[0] || x[1] < y[1] || x[2] < y[2]);
    case 4:
      return x[0] <= y[0] && x[1] <= y[1] && x[2] <= y[2] && x[3] <= y[3] &&
             (x[0] < y[0] || x[1] < y[1] || x[2] < y[2] || x[3] < y[3]);
    default:
      return point_internal::DominatesGeneric(a, b);
  }
}

// Returns true iff a_i <= b_i for all i (a ≺ b or a == b). Used for the
// zero layer, where a pseudo-tuple built from cluster minima may
// coincide with a real tuple.
inline bool WeaklyDominates(PointView a, PointView b) {
  DRLI_DCHECK(a.size() == b.size());
  const double* x = a.data();
  const double* y = b.data();
  switch (a.size()) {
    case 2:
      return x[0] <= y[0] && x[1] <= y[1];
    case 3:
      return x[0] <= y[0] && x[1] <= y[1] && x[2] <= y[2];
    case 4:
      return x[0] <= y[0] && x[1] <= y[1] && x[2] <= y[2] && x[3] <= y[3];
    default:
      return point_internal::WeaklyDominatesGeneric(a, b);
  }
}

// Full three-way-style comparison; one pass over the attributes.
inline DomRel Compare(PointView a, PointView b) {
  DRLI_DCHECK(a.size() == b.size());
  if (a.size() > 4) return point_internal::CompareGeneric(a, b);
  const double* x = a.data();
  const double* y = b.data();
  bool a_better = false;
  bool b_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a_better |= x[i] < y[i];
    b_better |= x[i] > y[i];
  }
  if (a_better && b_better) return DomRel::kIncomparable;
  if (a_better) return DomRel::kDominates;
  if (b_better) return DomRel::kDominatedBy;
  return DomRel::kEqual;
}

// Linear score F(t) = sum_i w_i * t_i (Section II).
inline double Score(PointView weights, PointView point) {
  DRLI_DCHECK(weights.size() == point.size());
  const double* w = weights.data();
  const double* p = point.data();
  switch (weights.size()) {
    // Left-to-right association, exactly like the generic loop, so the
    // specialized path rounds identically.
    case 2:
      return w[0] * p[0] + w[1] * p[1];
    case 3:
      return (w[0] * p[0] + w[1] * p[1]) + w[2] * p[2];
    case 4:
      return ((w[0] * p[0] + w[1] * p[1]) + w[2] * p[2]) + w[3] * p[3];
    default:
      return point_internal::ScoreGeneric(weights, point);
  }
}

// Flat row-major container of n points of fixed dimensionality.
//
// Two storage modes: owning (a std::vector filled via Add, the normal
// build path) and view-backed (a borrowed span over external memory,
// e.g. an mmap-ed snapshot section, guarded by a shared keepalive).
// Readers are oblivious to the mode; mutators require owns_data().
class PointSet {
 public:
  // An empty set of `dim`-dimensional points; dim >= 1.
  explicit PointSet(std::size_t dim);

  // Owning set adopting a pre-filled flat buffer (num_values % dim == 0).
  static PointSet FromVector(std::size_t dim, std::vector<double> values);

  // View-backed set over `num_values` doubles at `values`, which must
  // stay valid for as long as `keepalive` is held (typically the mmap
  // of a snapshot file). Copies share the view and the keepalive.
  static PointSet FromView(std::size_t dim, const double* values,
                           std::size_t num_values,
                           std::shared_ptr<const void> keepalive);

  // Copyable and movable: a PointSet is a plain value.
  PointSet(const PointSet&) = default;
  PointSet& operator=(const PointSet&) = default;
  PointSet(PointSet&&) = default;
  PointSet& operator=(PointSet&&) = default;

  std::size_t dim() const { return dim_; }
  std::size_t size() const { return num_values() / dim_; }
  bool empty() const { return num_values() == 0; }
  bool owns_data() const { return view_ == nullptr; }

  // Appends a point; returns its TupleId (= insertion index).
  TupleId Add(PointView p);
  TupleId Add(std::initializer_list<double> p);

  PointView operator[](std::size_t i) const {
    return PointView(base() + i * dim_, dim_);
  }
  double At(std::size_t i, std::size_t attr) const {
    return base()[i * dim_ + attr];
  }
  void Set(std::size_t i, std::size_t attr, double value) {
    DRLI_DCHECK(owns_data());
    data_[i * dim_ + attr] = value;
  }

  // Materializes point i as an owned vector.
  Point Materialize(std::size_t i) const;

  // Underlying flat buffer, for serialization.
  std::span<const double> raw() const {
    return std::span<const double>(base(), num_values());
  }

  void Reserve(std::size_t n);
  void Clear();

  // Returns the subset selected by `ids`, in order.
  PointSet Subset(const std::vector<TupleId>& ids) const;

 private:
  const double* base() const { return view_ != nullptr ? view_ : data_.data(); }
  std::size_t num_values() const {
    return view_ != nullptr ? view_values_ : data_.size();
  }

  std::size_t dim_;
  std::vector<double> data_;
  // View mode; null in owning mode.
  const double* view_ = nullptr;
  std::size_t view_values_ = 0;
  std::shared_ptr<const void> keepalive_;
};

// Debug formatting, e.g. "(0.25, 0.75)".
std::string ToString(PointView p);

}  // namespace drli

#endif  // DRLI_COMMON_POINT_H_
