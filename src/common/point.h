// Core data model: tuples as d-dimensional points in [0,1]^d and the
// dominance predicates of Section II of the paper.
//
// Storage is a flat row-major buffer (PointSet) so that layer peeling,
// skyline computation and hull construction stay cache friendly; code
// passes around PointView (a std::span) and TupleId indexes.

#ifndef DRLI_COMMON_POINT_H_
#define DRLI_COMMON_POINT_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace drli {

// Index of a tuple within its PointSet / relation.
using TupleId = std::uint32_t;
inline constexpr TupleId kInvalidTupleId =
    std::numeric_limits<TupleId>::max();

// Read-only view of one tuple's attribute values.
using PointView = std::span<const double>;

// Owned point, used where a materialized value is required
// (pseudo-tuples of the zero layer, generators, tests).
using Point = std::vector<double>;

// Outcome of a pairwise dominance comparison (Definition 2).
enum class DomRel {
  kDominates,     // a ≺ b
  kDominatedBy,   // b ≺ a
  kEqual,         // identical in every attribute
  kIncomparable,  // neither dominates
};

// Returns true iff a ≺ b: a_i <= b_i for all i and a_j < b_j for some j
// (Definition 2; lower values are better throughout the library).
bool Dominates(PointView a, PointView b);

// Returns true iff a_i <= b_i for all i (a ≺ b or a == b). Used for the
// zero layer, where a pseudo-tuple built from cluster minima may
// coincide with a real tuple.
bool WeaklyDominates(PointView a, PointView b);

// Full three-way-style comparison; one pass over the attributes.
DomRel Compare(PointView a, PointView b);

// Linear score F(t) = sum_i w_i * t_i (Section II).
double Score(PointView weights, PointView point);

// Flat row-major container of n points of fixed dimensionality.
class PointSet {
 public:
  // An empty set of `dim`-dimensional points; dim >= 1.
  explicit PointSet(std::size_t dim);

  // Copyable and movable: a PointSet is a plain value.
  PointSet(const PointSet&) = default;
  PointSet& operator=(const PointSet&) = default;
  PointSet(PointSet&&) = default;
  PointSet& operator=(PointSet&&) = default;

  std::size_t dim() const { return dim_; }
  std::size_t size() const { return data_.size() / dim_; }
  bool empty() const { return data_.empty(); }

  // Appends a point; returns its TupleId (= insertion index).
  TupleId Add(PointView p);
  TupleId Add(std::initializer_list<double> p);

  PointView operator[](std::size_t i) const {
    return PointView(data_.data() + i * dim_, dim_);
  }
  double At(std::size_t i, std::size_t attr) const {
    return data_[i * dim_ + attr];
  }
  void Set(std::size_t i, std::size_t attr, double value) {
    data_[i * dim_ + attr] = value;
  }

  // Materializes point i as an owned vector.
  Point Materialize(std::size_t i) const;

  // Underlying flat buffer, for serialization.
  const std::vector<double>& raw() const { return data_; }

  void Reserve(std::size_t n) { data_.reserve(n * dim_); }
  void Clear() { data_.clear(); }

  // Returns the subset selected by `ids`, in order.
  PointSet Subset(const std::vector<TupleId>& ids) const;

 private:
  std::size_t dim_;
  std::vector<double> data_;
};

// Debug formatting, e.g. "(0.25, 0.75)".
std::string ToString(PointView p);

}  // namespace drli

#endif  // DRLI_COMMON_POINT_H_
