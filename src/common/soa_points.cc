#include "common/soa_points.h"

#include "common/check.h"

namespace drli {

SoaPointSet::SoaPointSet(std::size_t dim, std::size_t size)
    : dim_(dim),
      size_(size),
      stride_((size + kColumnPad - 1) / kColumnPad * kColumnPad),
      values_(dim * stride_, 0.0) {}

SoaPointSet SoaPointSet::FromPointSet(const PointSet& points) {
  SoaPointSet soa(points.dim(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointView p = points[i];
    for (std::size_t a = 0; a < soa.dim_; ++a) {
      soa.values_[a * soa.stride_ + i] = p[a];
    }
  }
  return soa;
}

SoaPointSet SoaPointSet::FromPointSets(const PointSet& a, const PointSet& b) {
  DRLI_CHECK_EQ(a.dim(), b.dim());
  SoaPointSet soa(a.dim(), a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const PointView p = a[i];
    for (std::size_t attr = 0; attr < soa.dim_; ++attr) {
      soa.values_[attr * soa.stride_ + i] = p[attr];
    }
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    const PointView p = b[i];
    for (std::size_t attr = 0; attr < soa.dim_; ++attr) {
      soa.values_[attr * soa.stride_ + a.size() + i] = p[attr];
    }
  }
  return soa;
}

SoaPointSet SoaPointSet::FromPermutation(const PointSet& a, const PointSet& b,
                                         std::span<const std::uint32_t> order) {
  DRLI_CHECK_EQ(a.dim(), b.dim());
  DRLI_CHECK_EQ(order.size(), a.size() + b.size());
  SoaPointSet soa(a.dim(), order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::uint32_t src = order[i];
    const PointView p =
        src < a.size() ? a[src] : b[src - a.size()];
    for (std::size_t attr = 0; attr < soa.dim_; ++attr) {
      soa.values_[attr * soa.stride_ + i] = p[attr];
    }
  }
  return soa;
}

SoaPointSet SoaPointSet::FromSubset(const PointSet& points,
                                    std::span<const std::uint32_t> ids) {
  SoaPointSet soa(points.dim(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const PointView p = points[ids[i]];
    for (std::size_t attr = 0; attr < soa.dim_; ++attr) {
      soa.values_[attr * soa.stride_ + i] = p[attr];
    }
  }
  return soa;
}

}  // namespace drli
