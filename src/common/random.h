// Seeded random utilities shared by the data generators, k-means and the
// benchmark/query drivers. A thin wrapper over std::mt19937_64 so every
// experiment is reproducible from a single seed.

#ifndef DRLI_COMMON_RANDOM_H_
#define DRLI_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/point.h"

namespace drli {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  // Standard normal scaled by `stddev` around `mean`.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  // Uniform integer in [0, n).
  std::size_t Index(std::size_t n);

  // A weight vector sampled uniformly from the open probability simplex:
  // w_i > 0, sum w_i = 1 (Section VI-A). Uses the exponential-spacings
  // construction, clamped away from 0 by `min_weight` to match the
  // paper's strict inequality 0 < w_i < 1.
  Point SimplexWeight(std::size_t dim, double min_weight = 1e-6);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace drli

#endif  // DRLI_COMMON_RANDOM_H_
