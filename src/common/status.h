// Minimal Status/StatusOr types for recoverable errors at API
// boundaries (file I/O, malformed inputs). Internal invariant violations
// use DRLI_CHECK instead.

#ifndef DRLI_COMMON_STATUS_H_
#define DRLI_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace drli {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kInternal,
};

// Returns a short human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_;
  std::string message_;
};

// A value or an error. `value()` CHECK-fails when not ok.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return Status::...;` -- mirrors absl::StatusOr ergonomics.
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DRLI_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DRLI_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    DRLI_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    DRLI_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace drli

#endif  // DRLI_COMMON_STATUS_H_
