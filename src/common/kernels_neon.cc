// NEON implementations of the batched point kernels: 2 tuples per
// iteration (float64x2), one lane per tuple. Same bit-identity rules as
// the AVX2 translation unit: per-lane left-to-right accumulation,
// separate mul/add (compiled with -ffp-contract=off so nothing fuses
// into FMA), exact ordered comparisons. aarch64 has no double-precision
// gather, so id-list kernels assemble lanes with scalar loads and keep
// the arithmetic vectorized.

#include <arm_neon.h>

#include "common/kernels_batch.h"

namespace drli {
namespace kernel_internal {

namespace {

inline float64x2_t LoadPair(const double* col, const std::uint32_t* ids) {
  return float64x2_t{col[ids[0]], col[ids[1]]};
}

inline float64x2_t ScoreLanes(PointView w, const SoaPointSet& soa,
                              const std::uint32_t* ids) {
  const std::size_t d = soa.dim();
  float64x2_t acc;
  std::size_t a;
  if (d <= 4) {
    acc = vmulq_f64(vdupq_n_f64(w[0]), LoadPair(soa.column(0), ids));
    a = 1;
  } else {
    acc = vdupq_n_f64(0.0);
    a = 0;
  }
  for (; a < d; ++a) {
    acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(w[a]),
                                   LoadPair(soa.column(a), ids)));
  }
  return acc;
}

inline float64x2_t ScoreLanesLoad(PointView w, const SoaPointSet& soa,
                                  std::size_t first) {
  const std::size_t d = soa.dim();
  float64x2_t acc;
  std::size_t a;
  if (d <= 4) {
    acc = vmulq_f64(vdupq_n_f64(w[0]), vld1q_f64(soa.column(0) + first));
    a = 1;
  } else {
    acc = vdupq_n_f64(0.0);
    a = 0;
  }
  for (; a < d; ++a) {
    acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(w[a]),
                                   vld1q_f64(soa.column(a) + first)));
  }
  return acc;
}

}  // namespace

void ScoreBatchNeon(PointView weights, const SoaPointSet& soa,
                    const std::uint32_t* ids, std::size_t count, double* out) {
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    vst1q_f64(out + i, ScoreLanes(weights, soa, ids + i));
  }
  if (i < count) {
    ScoreBatchScalar(weights, soa, ids + i, count - i, out + i);
  }
}

void ScoreRangeNeon(PointView weights, const SoaPointSet& soa,
                    std::uint32_t first, std::size_t count, double* out) {
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    vst1q_f64(out + i, ScoreLanesLoad(weights, soa, first + i));
  }
  if (i < count) {
    ScoreRangeScalar(weights, soa, first + i, count - i, out + i);
  }
}

bool DominatesAnyBatchNeon(const SoaPointSet& soa, const std::uint32_t* ids,
                           std::size_t count, PointView q) {
  const std::size_t d = soa.dim();
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    uint64x2_t le = vdupq_n_u64(~0ull);
    uint64x2_t lt = vdupq_n_u64(0);
    for (std::size_t a = 0; a < d; ++a) {
      const float64x2_t v = LoadPair(soa.column(a), ids + i);
      const float64x2_t qa = vdupq_n_f64(q[a]);
      le = vandq_u64(le, vcleq_f64(v, qa));
      lt = vorrq_u64(lt, vcltq_f64(v, qa));
    }
    const uint64x2_t hit = vandq_u64(le, lt);
    if ((vgetq_lane_u64(hit, 0) | vgetq_lane_u64(hit, 1)) != 0) return true;
  }
  return i < count && DominatesAnyBatchScalar(soa, ids + i, count - i, q);
}

void CompareBatchNeon(const SoaPointSet& soa, const std::uint32_t* ids,
                      std::size_t count, PointView q, DomRel* out) {
  const std::size_t d = soa.dim();
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    uint64x2_t a_better = vdupq_n_u64(0);
    uint64x2_t b_better = vdupq_n_u64(0);
    for (std::size_t a = 0; a < d; ++a) {
      const float64x2_t v = LoadPair(soa.column(a), ids + i);
      const float64x2_t qa = vdupq_n_f64(q[a]);
      a_better = vorrq_u64(a_better, vcltq_f64(v, qa));
      b_better = vorrq_u64(b_better, vcgtq_f64(v, qa));
    }
    for (int lane = 0; lane < 2; ++lane) {
      const bool ab = (lane ? vgetq_lane_u64(a_better, 1)
                            : vgetq_lane_u64(a_better, 0)) != 0;
      const bool bb = (lane ? vgetq_lane_u64(b_better, 1)
                            : vgetq_lane_u64(b_better, 0)) != 0;
      out[i + lane] = ab && bb ? DomRel::kIncomparable
                      : ab     ? DomRel::kDominates
                      : bb     ? DomRel::kDominatedBy
                               : DomRel::kEqual;
    }
  }
  if (i < count) {
    CompareBatchScalar(soa, ids + i, count - i, q, out + i);
  }
}

}  // namespace kernel_internal
}  // namespace drli
