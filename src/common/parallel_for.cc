#include "common/parallel_for.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace drli {

std::size_t ParallelThreadCount() {
  const char* value = std::getenv("DRLI_THREADS");
  if (value != nullptr && *value != '\0') {
    const long parsed = std::strtol(value, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ParallelFor(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& fn,
                 std::size_t threads) {
  if (threads == 0) threads = ParallelThreadCount();
  if (threads > n) threads = n;
  // A CPU-bound fork-join loop never gains from more workers than
  // cores; oversubscribing only adds scheduler churn (the source of the
  // build_seconds_parallel > serial regression on small machines).
  // Dynamic claiming makes the worker count invisible in results, so
  // the clamp cannot change any output.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0 && threads > hw) threads = hw;

  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto work = [&](std::size_t worker) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i, worker);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t w = 1; w < threads; ++w) {
    pool.emplace_back(work, w);
  }
  work(0);
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace drli
