// Lightweight CHECK macros in the spirit of glog/absl.
//
// DRLI_CHECK(cond) aborts the process with a diagnostic when `cond` is
// false; it is always on. DRLI_DCHECK compiles away in NDEBUG builds and
// is used on hot paths. Both are for programming errors (broken
// invariants), not for recoverable conditions -- those use Status.

#ifndef DRLI_COMMON_CHECK_H_
#define DRLI_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace drli {
namespace internal_check {

// Prints `message` with source location to stderr and aborts.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

// Stream collector so call sites can write DRLI_CHECK(x) << "detail".
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace drli

#define DRLI_CHECK(cond)                                               \
  while (!(cond))                                                      \
  ::drli::internal_check::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define DRLI_CHECK_EQ(a, b) DRLI_CHECK((a) == (b))
#define DRLI_CHECK_NE(a, b) DRLI_CHECK((a) != (b))
#define DRLI_CHECK_LT(a, b) DRLI_CHECK((a) < (b))
#define DRLI_CHECK_LE(a, b) DRLI_CHECK((a) <= (b))
#define DRLI_CHECK_GT(a, b) DRLI_CHECK((a) > (b))
#define DRLI_CHECK_GE(a, b) DRLI_CHECK((a) >= (b))

#ifdef NDEBUG
#define DRLI_DCHECK(cond) \
  while (false && !(cond)) \
  ::drli::internal_check::CheckMessageBuilder(__FILE__, __LINE__, #cond)
#else
#define DRLI_DCHECK(cond) DRLI_CHECK(cond)
#endif

#endif  // DRLI_COMMON_CHECK_H_
