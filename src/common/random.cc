#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace drli {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

std::size_t Rng::Index(std::size_t n) {
  DRLI_DCHECK(n > 0);
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

Point Rng::SimplexWeight(std::size_t dim, double min_weight) {
  DRLI_CHECK(dim >= 1);
  Point w(dim);
  double total = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    // Exponential spacings: normalizing i.i.d. Exp(1) samples yields a
    // uniform draw from the simplex.
    double e = -std::log(std::max(Uniform(), 1e-300));
    w[i] = e;
    total += e;
  }
  for (double& wi : w) wi /= total;
  // Clamp components away from zero and renormalize, so the strict
  // condition 0 < w_i < 1 holds even under floating-point underflow.
  double clamped_total = 0.0;
  for (double& wi : w) {
    wi = std::max(wi, min_weight);
    clamped_total += wi;
  }
  for (double& wi : w) wi /= clamped_total;
  return w;
}

}  // namespace drli
