#include "common/point.h"

#include <cstdio>

#include "common/check.h"

namespace drli {

namespace point_internal {

bool DominatesGeneric(PointView a, PointView b) {
  bool strict = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strict = true;
  }
  return strict;
}

bool WeaklyDominatesGeneric(PointView a, PointView b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

DomRel CompareGeneric(PointView a, PointView b) {
  bool a_better = false;
  bool b_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) {
      a_better = true;
    } else if (a[i] > b[i]) {
      b_better = true;
    }
    if (a_better && b_better) return DomRel::kIncomparable;
  }
  if (a_better) return DomRel::kDominates;
  if (b_better) return DomRel::kDominatedBy;
  return DomRel::kEqual;
}

double ScoreGeneric(PointView weights, PointView point) {
  double s = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    s += weights[i] * point[i];
  }
  return s;
}

}  // namespace point_internal

PointSet::PointSet(std::size_t dim) : dim_(dim) {
  DRLI_CHECK(dim >= 1) << "PointSet requires dim >= 1";
}

PointSet PointSet::FromVector(std::size_t dim, std::vector<double> values) {
  PointSet out(dim);
  DRLI_CHECK_EQ(values.size() % dim, 0u);
  out.data_ = std::move(values);
  return out;
}

PointSet PointSet::FromView(std::size_t dim, const double* values,
                            std::size_t num_values,
                            std::shared_ptr<const void> keepalive) {
  PointSet out(dim);
  DRLI_CHECK_EQ(num_values % dim, 0u);
  DRLI_CHECK(values != nullptr || num_values == 0);
  out.view_ = values;
  out.view_values_ = num_values;
  out.keepalive_ = std::move(keepalive);
  return out;
}

TupleId PointSet::Add(PointView p) {
  DRLI_CHECK_EQ(p.size(), dim_);
  DRLI_CHECK(owns_data()) << "Add on a view-backed PointSet";
  const TupleId id = static_cast<TupleId>(size());
  data_.insert(data_.end(), p.begin(), p.end());
  return id;
}

void PointSet::Reserve(std::size_t n) {
  DRLI_CHECK(owns_data()) << "Reserve on a view-backed PointSet";
  data_.reserve(n * dim_);
}

void PointSet::Clear() {
  data_.clear();
  view_ = nullptr;
  view_values_ = 0;
  keepalive_.reset();
}

TupleId PointSet::Add(std::initializer_list<double> p) {
  return Add(PointView(p.begin(), p.size()));
}

Point PointSet::Materialize(std::size_t i) const {
  PointView v = (*this)[i];
  return Point(v.begin(), v.end());
}

PointSet PointSet::Subset(const std::vector<TupleId>& ids) const {
  PointSet out(dim_);
  out.Reserve(ids.size());
  for (TupleId id : ids) {
    DRLI_DCHECK(id < size());
    out.Add((*this)[id]);
  }
  return out;
}

std::string ToString(PointView p) {
  std::string out = "(";
  char buf[32];
  for (std::size_t i = 0; i < p.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%g", p[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  out += ")";
  return out;
}

}  // namespace drli
