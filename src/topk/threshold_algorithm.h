// The Threshold Algorithm (Fagin et al.) over per-attribute sorted
// lists, in the form the Hybrid-Layer index uses it: sorted access in
// round-robin order, random access to complete each newly seen tuple,
// and the classic stop condition threshold >= current k-th best score.
// A trailing tie-probe resolves exact score ties under the canonical
// (score, id) order of ResultOrderLess without charging the cost
// metric for non-tied probes.

#ifndef DRLI_TOPK_THRESHOLD_ALGORITHM_H_
#define DRLI_TOPK_THRESHOLD_ALGORITHM_H_

#include <vector>

#include "common/point.h"
#include "common/soa_points.h"
#include "topk/query.h"
#include "topk/sorted_lists.h"

namespace drli {

// Bounded max-heap keeping the k lowest tuples seen so far in the
// canonical (score, id) order. k = 0 is legal: Push is a no-op and
// KthScore reports -infinity so scan loops terminate immediately.
class TopKHeap {
 public:
  explicit TopKHeap(std::size_t k);

  std::size_t k() const { return k_; }
  std::size_t size() const { return heap_.size(); }

  void Push(ScoredTuple t);

  // Score of the current k-th best, +infinity while fewer than k held.
  double KthScore() const;

  // The held tuples in ascending score order.
  std::vector<ScoredTuple> SortedAscending() const;

 private:
  std::size_t k_;
  std::vector<ScoredTuple> heap_;  // max-heap by score
};

// Optional execution-budget hookup for TaScanLayer. The gate is polled
// once per sorted-access round; when it trips the scan returns early
// and reports why, plus a lower bound on the score of every tuple in
// the layer that was never offered to the heap (the last completed
// round's threshold -- the list minima before any round -- or the k-th
// score when the trip happens inside the tie-probe). Callers derive the
// certified prefix of their partial result from it.
struct TaScanControl {
  BudgetGate* gate = nullptr;
  Termination stop = Termination::kComplete;
  double frontier = std::numeric_limits<double>::infinity();
};

// One TA pass over a layer's sorted lists. Every tuple seen through
// sorted access is scored once (counted in *evaluated) and offered to
// *heap. Scanning stops when the TA threshold (the weighted sum of the
// current list frontier) reaches heap->KthScore(), or the lists are
// exhausted. When the stop is an exact tie (threshold == KthScore) an
// uncharged probe continues until strict separation, counting and
// keeping only tuples that tie the k-th score, so the result is exact
// under ResultOrderLess while the cost metric matches the classic
// tie-agnostic algorithm.
//
// When `layer_min_bound` is non-null it receives a lower bound on the
// minimum score of ANY tuple in the layer: min(best seen score, final
// threshold). Convex-layer minima increase strictly layer over layer,
// so HL+ uses this to cut the layer loop (its "tight threshold").
//
// When `control` is non-null its gate is polled every round and the
// scan stops early once it trips (see TaScanControl).
//
// When `soa` is non-null it must be a dimension-major view of `points`
// (same ids); each round's random accesses are then completed through
// one batched kernel call. Scores are bit-identical either way.
void TaScanLayer(const PointSet& points, const SortedLists& lists,
                 PointView weights, TopKHeap* heap, std::size_t* evaluated,
                 double* layer_min_bound = nullptr,
                 std::vector<TupleId>* accessed = nullptr,
                 TaScanControl* control = nullptr,
                 const SoaPointSet* soa = nullptr);

// Weighted sum of the per-attribute list minima: a lower bound on the
// score of every tuple in the layer. Used by HL+ to skip whole layers.
double LayerScoreLowerBound(const SortedLists& lists, PointView weights);

// Certification frontier for partial results collected through a
// TopKHeap: a tuple evicted from (or rejected by) a full heap is
// canonically at or above its k-th entry, so `unoffered_bound` (the
// bound on tuples never offered to the heap) is tightened by KthScore()
// whenever the heap is full. With a non-full heap nothing was ever
// evicted and the unoffered bound stands alone.
inline double HeapFrontier(const TopKHeap& heap, double unoffered_bound) {
  if (heap.k() > 0 && heap.size() == heap.k() &&
      heap.KthScore() < unoffered_bound) {
    return heap.KthScore();
  }
  return unoffered_bound;
}

}  // namespace drli

#endif  // DRLI_TOPK_THRESHOLD_ALGORITHM_H_
