// Full-scan top-k: scores every tuple. The correctness oracle for every
// other index and the "no index" baseline in the examples.

#ifndef DRLI_TOPK_SCAN_H_
#define DRLI_TOPK_SCAN_H_

#include <string>

#include "common/point.h"
#include "common/soa_points.h"
#include "topk/query.h"

namespace drli {

// Scores every tuple and returns the k best; cost = n. Deliberately
// stays on the scalar kernel: this free function is the differential
// oracle the batched paths are checked against.
TopKResult Scan(const PointSet& points, const TopKQuery& query);

class FullScanIndex final : public TopKIndex {
 public:
  explicit FullScanIndex(PointSet points)
      : points_(std::move(points)), soa_(SoaPointSet::FromPointSet(points_)) {}

  std::string name() const override { return "SCAN"; }
  std::size_t size() const override { return points_.size(); }
  std::size_t dim() const override { return points_.dim(); }
  TopKResult Query(const TopKQuery& query) const override;

  const PointSet& points() const { return points_; }

 private:
  PointSet points_;
  // Dimension-major view for contiguous batched scoring on unbudgeted
  // queries; derived at construction, never persisted.
  SoaPointSet soa_;
};

}  // namespace drli

#endif  // DRLI_TOPK_SCAN_H_
