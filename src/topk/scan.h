// Full-scan top-k: scores every tuple. The correctness oracle for every
// other index and the "no index" baseline in the examples.

#ifndef DRLI_TOPK_SCAN_H_
#define DRLI_TOPK_SCAN_H_

#include <string>

#include "common/point.h"
#include "topk/query.h"

namespace drli {

// Scores every tuple and returns the k best; cost = n.
TopKResult Scan(const PointSet& points, const TopKQuery& query);

class FullScanIndex final : public TopKIndex {
 public:
  explicit FullScanIndex(PointSet points) : points_(std::move(points)) {}

  std::string name() const override { return "SCAN"; }
  std::size_t size() const override { return points_.size(); }
  TopKResult Query(const TopKQuery& query) const override;

  const PointSet& points() const { return points_; }

 private:
  PointSet points_;
};

}  // namespace drli

#endif  // DRLI_TOPK_SCAN_H_
