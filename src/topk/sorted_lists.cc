#include "topk/sorted_lists.h"

#include <algorithm>

#include "common/check.h"

namespace drli {

SortedLists::SortedLists(const PointSet& points,
                         const std::vector<TupleId>& members) {
  const std::size_t d = points.dim();
  lists_.resize(d);
  for (std::size_t attr = 0; attr < d; ++attr) {
    auto& list = lists_[attr];
    list.reserve(members.size());
    for (TupleId id : members) {
      list.push_back(Entry{points.At(id, attr), id});
    }
    std::sort(list.begin(), list.end(), [](const Entry& a, const Entry& b) {
      if (a.value != b.value) return a.value < b.value;
      return a.id < b.id;
    });
  }
}

}  // namespace drli
