// Per-attribute sorted lists over a subset of tuples -- the list-based
// substrate of the Hybrid-Layer index (each convex layer stores its
// tuples "as sorted lists in increasing order of d attribute values").

#ifndef DRLI_TOPK_SORTED_LISTS_H_
#define DRLI_TOPK_SORTED_LISTS_H_

#include <vector>

#include "common/point.h"

namespace drli {

class SortedLists {
 public:
  struct Entry {
    double value;
    TupleId id;
  };

  // Builds d sorted lists over `members` (ids into `points`). The
  // PointSet is not retained.
  SortedLists(const PointSet& points, const std::vector<TupleId>& members);

  std::size_t dim() const { return lists_.size(); }
  std::size_t size() const { return lists_.empty() ? 0 : lists_[0].size(); }

  // Entry at `pos` of attribute list `attr` (ascending by value).
  const Entry& At(std::size_t attr, std::size_t pos) const {
    return lists_[attr][pos];
  }

 private:
  std::vector<std::vector<Entry>> lists_;
};

}  // namespace drli

#endif  // DRLI_TOPK_SORTED_LISTS_H_
