#include "topk/scan.h"

#include <algorithm>

#include "common/check.h"
#include "common/stopwatch.h"

namespace drli {

TopKResult Scan(const PointSet& points, const TopKQuery& query) {
  ValidateQuery(query, points.dim());
  TopKResult result;
  result.items.reserve(points.size());
  result.accessed.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.items.push_back(ScoredTuple{static_cast<TupleId>(i),
                                       Score(query.weights, points[i])});
    result.accessed.push_back(static_cast<TupleId>(i));
  }
  result.stats.tuples_evaluated = points.size();
  const std::size_t k = std::min(query.k, result.items.size());
  std::partial_sort(result.items.begin(), result.items.begin() + k,
                    result.items.end(), ResultOrderLess);
  result.items.resize(k);
  return result;
}

TopKResult FullScanIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  TopKResult result = Scan(points_, query);
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace drli
