#include "topk/scan.h"

#include <algorithm>
#include <limits>

#include "common/kernels_batch.h"
#include "common/stopwatch.h"

namespace drli {

TopKResult Scan(const PointSet& points, const TopKQuery& query) {
  if (const Status status = ValidateQuery(query, points.dim()); !status.ok()) {
    return InvalidQueryResult(status);
  }
  TopKResult result;
  result.items.reserve(points.size());
  result.accessed.reserve(points.size());
  BudgetGate gate(query.budget);
  Termination stop = Termination::kComplete;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (stop = gate.Step(i); stop != Termination::kComplete) break;
    result.items.push_back(ScoredTuple{static_cast<TupleId>(i),
                                       Score(query.weights, points[i])});
    result.accessed.push_back(static_cast<TupleId>(i));
  }
  result.stats.tuples_evaluated = result.items.size();
  const std::size_t k = std::min(query.k, result.items.size());
  std::partial_sort(result.items.begin(), result.items.begin() + k,
                    result.items.end(), ResultOrderLess);
  result.items.resize(k);
  if (stop == Termination::kComplete) {
    FinalizeComplete(result);
  } else {
    // The unscanned suffix is unordered, so nothing can be certified.
    FinalizePartial(result, stop, -std::numeric_limits<double>::infinity());
  }
  return result;
}

TopKResult FullScanIndex::Query(const TopKQuery& query) const {
  Stopwatch timer;
  TopKResult result;
  if (query.budget.unlimited() && !points_.empty()) {
    // No gate to poll mid-scan: score the whole relation through the
    // contiguous-range batch kernel (bit-identical to Scan()).
    if (const Status status = ValidateQuery(query, points_.dim());
        !status.ok()) {
      return InvalidQueryResult(status);
    }
    const std::size_t n = points_.size();
    std::vector<double> scores(n);
    ScoreRange(query.weights, soa_, 0, n, scores.data());
    result.items.reserve(n);
    result.accessed.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      result.items.push_back(ScoredTuple{static_cast<TupleId>(i), scores[i]});
      result.accessed.push_back(static_cast<TupleId>(i));
    }
    result.stats.tuples_evaluated = n;
    const std::size_t k = std::min(query.k, n);
    std::partial_sort(result.items.begin(), result.items.begin() + k,
                      result.items.end(), ResultOrderLess);
    result.items.resize(k);
    FinalizeComplete(result);
  } else {
    result = Scan(points_, query);
  }
  result.stats.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace drli
