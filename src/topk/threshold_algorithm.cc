#include "topk/threshold_algorithm.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/check.h"
#include "common/kernels_batch.h"

namespace drli {

TopKHeap::TopKHeap(std::size_t k) : k_(k) { heap_.reserve(k); }

void TopKHeap::Push(ScoredTuple t) {
  if (k_ == 0) return;
  if (heap_.size() < k_) {
    heap_.push_back(t);
    std::push_heap(heap_.begin(), heap_.end(), ResultOrderLess);
    return;
  }
  if (ResultOrderLess(t, heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), ResultOrderLess);
    heap_.back() = t;
    std::push_heap(heap_.begin(), heap_.end(), ResultOrderLess);
  }
}

double TopKHeap::KthScore() const {
  // k = 0 holds nothing: every tuple already "exceeds" the k-th best,
  // so callers' stop conditions fire immediately.
  if (k_ == 0) return -std::numeric_limits<double>::infinity();
  if (heap_.size() < k_) return std::numeric_limits<double>::infinity();
  return heap_.front().score;
}

std::vector<ScoredTuple> TopKHeap::SortedAscending() const {
  std::vector<ScoredTuple> out = heap_;
  std::sort(out.begin(), out.end(), ResultOrderLess);
  return out;
}

void TaScanLayer(const PointSet& points, const SortedLists& lists,
                 PointView weights, TopKHeap* heap, std::size_t* evaluated,
                 double* layer_min_bound, std::vector<TupleId>* accessed,
                 TaScanControl* control, const SoaPointSet* soa) {
  const std::size_t d = lists.dim();
  const std::size_t n = lists.size();
  DRLI_CHECK_EQ(weights.size(), d);
  std::unordered_set<TupleId> seen;
  seen.reserve(2 * d);
  // Tuples first seen this round, completed in one batched kernel call
  // after the round's sorted accesses (at most d of them). Scoring at
  // the round boundary instead of per list entry changes nothing: the
  // stop condition only consults the heap after the round.
  std::vector<TupleId> round_ids;
  std::vector<double> round_scores;
  if (soa != nullptr) {
    round_ids.reserve(d);
    round_scores.resize(d);
  }
  const auto complete_round = [&](const std::vector<TupleId>& ids,
                                  std::vector<double>& out) {
    if (ids.empty()) return;
    ScoreBatch(weights, *soa, ids.data(), ids.size(), out.data());
  };
  double best_seen = std::numeric_limits<double>::infinity();
  double threshold = 0.0;
  // Threshold of the last COMPLETED round: a lower bound on every tuple
  // not yet seen. Before any round it is the weighted sum of the list
  // minima, which bounds the whole layer.
  double last_threshold =
      n > 0 ? LayerScoreLowerBound(lists, weights)
            : std::numeric_limits<double>::infinity();
  bool exhausted = true;
  std::size_t pos = 0;
  for (; pos < n; ++pos) {
    if (control != nullptr && control->gate != nullptr) {
      if (const Termination stop = control->gate->Step(*evaluated);
          stop != Termination::kComplete) {
        control->stop = stop;
        control->frontier = last_threshold;
        if (layer_min_bound != nullptr) {
          *layer_min_bound = std::min(best_seen, last_threshold);
        }
        return;
      }
    }
    // Sorted access: one entry from each list (round-robin depth pos).
    threshold = 0.0;
    if (soa != nullptr) {
      round_ids.clear();
      for (std::size_t attr = 0; attr < d; ++attr) {
        const SortedLists::Entry& e = lists.At(attr, pos);
        threshold += weights[attr] * e.value;
        if (seen.insert(e.id).second) round_ids.push_back(e.id);
      }
      complete_round(round_ids, round_scores);
      for (std::size_t i = 0; i < round_ids.size(); ++i) {
        // Random access completes the tuple; this is one evaluation.
        const double score = round_scores[i];
        ++*evaluated;
        if (accessed != nullptr) accessed->push_back(round_ids[i]);
        best_seen = std::min(best_seen, score);
        heap->Push(ScoredTuple{round_ids[i], score});
      }
    } else {
      for (std::size_t attr = 0; attr < d; ++attr) {
        const SortedLists::Entry& e = lists.At(attr, pos);
        threshold += weights[attr] * e.value;
        if (seen.insert(e.id).second) {
          // Random access completes the tuple; this is one evaluation.
          const double score = Score(weights, points[e.id]);
          ++*evaluated;
          if (accessed != nullptr) accessed->push_back(e.id);
          best_seen = std::min(best_seen, score);
          heap->Push(ScoredTuple{e.id, score});
        }
      }
    }
    // Every unseen tuple ranks at or beyond the frontier in all lists,
    // so its score is >= threshold (classic TA stop).
    if (threshold >= heap->KthScore()) {
      exhausted = false;
      ++pos;
      break;
    }
    last_threshold = threshold;
  }
  if (layer_min_bound != nullptr) {
    // Unseen tuples score >= the final threshold; when the lists were
    // exhausted everything was seen.
    *layer_min_bound = exhausted ? best_seen : std::min(best_seen, threshold);
  }
  // Tie-probe: at threshold == KthScore an unseen tuple can still tie
  // the k-th answer exactly, and the canonical (score, id) order must
  // surface the smaller id. Keep scanning, but charge only genuine
  // ties: a tuple first seen past the classic stop has every attribute
  // at or beyond the stop frontier, so it scores >= the stop threshold
  // = KthScore; anything strictly above is discarded without being
  // counted (the tie-agnostic reference never materializes it).
  if (!exhausted && threshold == heap->KthScore()) {
    const double kth = heap->KthScore();
    for (; pos < n; ++pos) {
      if (control != nullptr && control->gate != nullptr) {
        if (const Termination stop = control->gate->Step(*evaluated);
            stop != Termination::kComplete) {
          // Past the classic stop every unoffered tuple scores >= the
          // stop threshold == kth (ties at kth may still be missing,
          // which the strict-< certification rule already excludes).
          control->stop = stop;
          control->frontier = kth;
          return;
        }
      }
      double probe_threshold = 0.0;
      if (soa != nullptr) {
        round_ids.clear();
        for (std::size_t attr = 0; attr < d; ++attr) {
          const SortedLists::Entry& e = lists.At(attr, pos);
          probe_threshold += weights[attr] * e.value;
          if (seen.insert(e.id).second) round_ids.push_back(e.id);
        }
        complete_round(round_ids, round_scores);
        for (std::size_t i = 0; i < round_ids.size(); ++i) {
          if (round_scores[i] == kth) {
            ++*evaluated;
            if (accessed != nullptr) accessed->push_back(round_ids[i]);
            heap->Push(ScoredTuple{round_ids[i], kth});
          }
        }
      } else {
        for (std::size_t attr = 0; attr < d; ++attr) {
          const SortedLists::Entry& e = lists.At(attr, pos);
          probe_threshold += weights[attr] * e.value;
          if (seen.insert(e.id).second) {
            const double score = Score(weights, points[e.id]);
            if (score == kth) {
              ++*evaluated;
              if (accessed != nullptr) accessed->push_back(e.id);
              heap->Push(ScoredTuple{e.id, score});
            }
          }
        }
      }
      if (probe_threshold > kth) break;
    }
  }
}

double LayerScoreLowerBound(const SortedLists& lists, PointView weights) {
  double bound = 0.0;
  for (std::size_t attr = 0; attr < lists.dim(); ++attr) {
    bound += weights[attr] * lists.At(attr, 0).value;
  }
  return bound;
}

}  // namespace drli
