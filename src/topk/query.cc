#include "topk/query.h"

#include "common/check.h"

namespace drli {

void ValidateQuery(const TopKQuery& query, std::size_t dim) {
  DRLI_CHECK_GE(query.k, 1u);
  DRLI_CHECK_EQ(query.weights.size(), dim)
      << "weight vector dimensionality mismatch";
  for (double w : query.weights) {
    DRLI_CHECK(w > 0.0) << "weights must be strictly positive";
  }
}

}  // namespace drli
