#include "topk/query.h"

#include "common/check.h"

namespace drli {

std::vector<TopKResult> TopKIndex::QueryBatch(
    const std::vector<TopKQuery>& queries) const {
  std::vector<TopKResult> results;
  results.reserve(queries.size());
  for (const TopKQuery& query : queries) results.push_back(Query(query));
  return results;
}

void ValidateQuery(const TopKQuery& query, std::size_t dim) {
  DRLI_CHECK_EQ(query.weights.size(), dim)
      << "weight vector dimensionality mismatch";
  for (double w : query.weights) {
    DRLI_CHECK(w > 0.0) << "weights must be strictly positive";
  }
}

}  // namespace drli
