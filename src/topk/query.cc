#include "topk/query.h"

#include <cmath>
#include <cstddef>
#include <string>

namespace drli {

const char* TerminationName(Termination termination) {
  switch (termination) {
    case Termination::kComplete:
      return "complete";
    case Termination::kDeadline:
      return "deadline";
    case Termination::kStepBudget:
      return "step-budget";
    case Termination::kCancelled:
      return "cancelled";
    case Termination::kInvalidQuery:
      return "invalid-query";
    case Termination::kError:
      return "error";
    case Termination::kShed:
      return "shed";
  }
  return "unknown";
}

void FinalizePartial(TopKResult& result, Termination reason,
                     double frontier_bound) {
  result.termination = reason;
  result.frontier_bound = frontier_bound;
  std::size_t certified = 0;
  while (certified < result.items.size() &&
         result.items[certified].score < frontier_bound) {
    ++certified;
  }
  result.certified_prefix = certified;
}

TopKResult InvalidQueryResult(const Status& status) {
  TopKResult result;
  result.termination = Termination::kInvalidQuery;
  result.certified_prefix = 0;
  result.frontier_bound = -std::numeric_limits<double>::infinity();
  result.error = status.ToString();
  return result;
}

std::vector<TopKResult> TopKIndex::QueryBatch(
    const std::vector<TopKQuery>& queries) const {
  std::vector<TopKResult> results;
  results.reserve(queries.size());
  for (const TopKQuery& query : queries) {
    results.push_back(GuardedQuery([&] { return Query(query); }));
  }
  return results;
}

std::vector<TopKResult> TopKIndex::QueryBatch(
    const std::vector<TopKQuery>& queries, const BatchOptions& options) const {
  // Validation runs BEFORE the shed decision: a malformed query comes
  // back kInvalidQuery without consuming an in-flight slot, so it can
  // never crowd out a well-formed one. Families that cannot report
  // their dimensionality (dim() == 0) skip the pre-check and rely on
  // Query's own rejection, which still costs them the slot.
  const std::size_t d = dim();
  std::vector<TopKResult> results(queries.size());
  std::vector<std::size_t> runnable;
  runnable.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (d != 0) {
      Status status = ValidateQuery(queries[i], d);
      if (!status.ok()) {
        results[i] = InvalidQueryResult(status);
        continue;
      }
    }
    runnable.push_back(i);
  }
  const std::size_t admitted_count =
      (options.max_in_flight == 0 || runnable.size() <= options.max_in_flight)
          ? runnable.size()
          : options.max_in_flight;
  std::vector<TopKQuery> admitted;
  admitted.reserve(admitted_count);
  for (std::size_t j = 0; j < admitted_count; ++j) {
    admitted.push_back(queries[runnable[j]]);
    if (!options.default_budget.unlimited() &&
        admitted.back().budget.unlimited()) {
      admitted.back().budget = options.default_budget;
    }
  }
  std::vector<TopKResult> ran = QueryBatch(admitted);
  for (std::size_t j = 0; j < ran.size(); ++j) {
    results[runnable[j]] = std::move(ran[j]);
  }
  for (std::size_t j = admitted_count; j < runnable.size(); ++j) {
    TopKResult& slot = results[runnable[j]];
    slot.termination = Termination::kShed;
    slot.error = "shed: batch in-flight limit (" +
                 std::to_string(options.max_in_flight) + ") exceeded";
  }
  return results;
}

std::vector<TopKResult> TopKIndex::QueryBatch(
    const std::vector<TopKQuery>& queries, const BatchOptions& options,
    BatchStats* stats) const {
  Stopwatch wall;
  std::vector<TopKResult> results = QueryBatch(queries, options);
  if (stats != nullptr) {
    *stats = BatchStats{};
    for (const TopKResult& result : results) stats->merged.Merge(result.stats);
    stats->wall_seconds = wall.ElapsedSeconds();
  }
  return results;
}

Termination RemainingBudget(const ExecBudget& budget, std::size_t evaluated,
                            const Stopwatch& timer, ExecBudget* sub) {
  *sub = ExecBudget{};
  sub->cancel = budget.cancel;
  if (budget.max_evals != 0) {
    if (evaluated >= budget.max_evals) return Termination::kStepBudget;
    sub->max_evals = budget.max_evals - evaluated;
  }
  if (budget.deadline_seconds > 0.0) {
    const double left = budget.deadline_seconds - timer.ElapsedSeconds();
    if (left <= 0.0) return Termination::kDeadline;
    sub->deadline_seconds = left;
  }
  if (budget.cancel != nullptr && budget.cancel->cancelled()) {
    return Termination::kCancelled;
  }
  return Termination::kComplete;
}

Status ValidateQuery(const TopKQuery& query, std::size_t dim) {
  if (query.weights.size() != dim) {
    return Status::InvalidArgument(
        "weight vector dimensionality mismatch: got " +
        std::to_string(query.weights.size()) + ", index has " +
        std::to_string(dim));
  }
  bool any_positive = false;
  for (double w : query.weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument(
          "weights must be non-negative and finite");
    }
    if (w > 0.0) any_positive = true;
  }
  if (!any_positive) {
    return Status::InvalidArgument(
        "weights must include at least one positive entry");
  }
  return Status::Ok();
}

}  // namespace drli
