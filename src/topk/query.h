// Top-k query model (Definition 1) and the interface every index in the
// library implements, including the cost instrumentation of
// Definition 9 (number of tuples evaluated by the scoring function) and
// the serving-grade execution controls: per-query budgets, cooperative
// cancellation, and certified partial results (see DESIGN.md §5,
// "Serving robustness").

#ifndef DRLI_TOPK_QUERY_H_
#define DRLI_TOPK_QUERY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/point.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace drli {

// Cooperative cancellation flag shared between a caller and one or more
// in-flight queries. Cancel() may be called from any thread; traversal
// loops poll cancelled() at every budget check and stop with
// Termination::kCancelled. Plain relaxed atomics: cancellation is a
// latency hint, not a synchronization point.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    // Deterministic test fuse (see CancelAfterChecks).
    if (fuse_.load(std::memory_order_relaxed) <= 0) return false;
    if (fuse_.fetch_sub(1, std::memory_order_relaxed) <= 1) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  // Test hook for the budget-fault sweeps: the first `polls` calls to
  // cancelled() return false, every later call returns true. With the
  // single-threaded traversal loops polling exactly once per step this
  // fires cancellation at a deterministic step index.
  void CancelAfterChecks(std::uint64_t polls) {
    cancelled_.store(false, std::memory_order_relaxed);
    fuse_.store(static_cast<std::int64_t>(polls) + 1,
                std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<std::int64_t> fuse_{0};
};

// Execution budget attached to a query. Zero-valued fields mean
// "unlimited"; the default budget is free on the hot path (a single
// branch per traversal step, see BudgetGate).
struct ExecBudget {
  // Wall-clock allowance for the Query call, measured from its start
  // (so serial and parallel QueryBatch give each query the same
  // allowance). 0 = no deadline.
  double deadline_seconds = 0.0;
  // Cap on stats.tuples_evaluated; the traversal stops at the first
  // step boundary at or past the cap (a single step may score several
  // successors, so the final count can overshoot by one step's worth).
  // 0 = unlimited.
  std::size_t max_evals = 0;
  // Optional cancellation flag, polled once per traversal step. Not
  // owned; must outlive the query.
  const CancelToken* cancel = nullptr;

  bool unlimited() const {
    return deadline_seconds <= 0.0 && max_evals == 0 && cancel == nullptr;
  }
};

// A linear top-k query: non-negative finite weights summing to 1 (at
// least one strictly positive), and the retrieval size k. Lower scores
// are better. Zero weights are legal in every family -- queries on the
// weight-simplex boundary arise naturally from reverse top-k slope
// intervals and constrained scenarios (see ValidateQuery).
struct TopKQuery {
  Point weights;
  std::size_t k = 1;
  ExecBudget budget{};
};

struct ScoredTuple {
  TupleId id = kInvalidTupleId;
  double score = 0.0;
};

// Canonical result order shared by every index family: ascending score
// (lower is better), ties broken by ascending tuple id. All TopKIndex
// implementations return result.items sorted by this rule and resolve
// exact score ties in its favour, so any two families agree on the
// exact (id, score) sequence -- the contract the differential oracle in
// src/testing/ relies on.
inline bool ResultOrderLess(const ScoredTuple& a, const ScoredTuple& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.id < b.id;
}

// Cost accounting (Definition 9): a tuple counts as evaluated when it is
// accessed and its score computed. Pseudo-tuples of the zero layer are
// tracked separately -- they are not relation tuples.
struct QueryStats {
  std::size_t tuples_evaluated = 0;
  std::size_t virtual_evaluated = 0;
  // Shards whose per-shard index actually ran for this query (sharded
  // families only; 0 for single-partition indexes). The scatter-gather
  // coordinator's pruning effectiveness metric: nonempty_shards -
  // shards_touched shards were skipped outright.
  std::size_t shards_touched = 0;
  // Runs the tiered dynamic index opened for this query (tiered family
  // only; 0 elsewhere). num_runs - runs_opened runs were pruned by
  // their frontier lower bound.
  std::size_t runs_opened = 0;
  // Bounding boxes (sublayer groups, runs, or whole shards) discarded
  // by a constrained-query predicate without scoring any member
  // (scenarios/constrained.h only; 0 elsewhere). The constrained
  // traversal's pruning effectiveness metric.
  std::size_t boxes_pruned = 0;
  // Wall time of the Query call (seconds). Complements the paper's
  // tuples-evaluated metric in benchmark output. Merge sums it, so a
  // merged value over a parallel batch is aggregate query-seconds (CPU
  // occupancy), NOT the batch's wall time -- use BatchStats::
  // wall_seconds for throughput math.
  double elapsed_seconds = 0.0;

  void Merge(const QueryStats& other) {
    tuples_evaluated += other.tuples_evaluated;
    virtual_evaluated += other.virtual_evaluated;
    shards_touched += other.shards_touched;
    runs_opened += other.runs_opened;
    boxes_pruned += other.boxes_pruned;
    elapsed_seconds += other.elapsed_seconds;
  }
};

// Batch-level accounting for one QueryBatch call. `merged` is the
// Merge of every result's stats; its elapsed_seconds is the SUM of
// per-query wall clocks, which over a parallel batch overstates the
// real elapsed time by roughly the worker count. `wall_seconds` is the
// single wall clock around the whole batch -- the denominator a
// throughput (QPS) report must divide by.
struct BatchStats {
  QueryStats merged;
  double wall_seconds = 0.0;
};

// Why a Query call stopped. Everything except kComplete describes a
// partial or rejected result; none of them abort the process.
enum class Termination : std::uint8_t {
  kComplete = 0,   // full answer; every item certified
  kDeadline,       // ExecBudget::deadline_seconds expired
  kStepBudget,     // ExecBudget::max_evals reached
  kCancelled,      // CancelToken fired
  kInvalidQuery,   // malformed query rejected (see ValidateQuery)
  kError,          // worker raised an exception; message in `error`
  kShed,           // rejected by QueryBatch admission control
};

// Short identifier, e.g. "complete" or "step-budget".
const char* TerminationName(Termination termination);

struct TopKResult {
  // Up to k tuples in ascending score order (fewer if the relation is
  // small or the traversal stopped on a budget).
  std::vector<ScoredTuple> items;
  QueryStats stats;
  // Relation tuples evaluated, in access order (pseudo-tuples
  // excluded). Feeds the disk-layout simulation in storage/ -- the
  // paper's "tuples in the same layer are stored in the same disk
  // block" discussion.
  std::vector<TupleId> accessed;

  // Why the traversal stopped.
  Termination termination = Termination::kComplete;
  // The first `certified_prefix` entries of `items` are guaranteed to
  // equal the exact top-k answer's prefix, even when the traversal
  // stopped early. Derived from frontier_bound; equals items.size()
  // after a complete run.
  std::size_t certified_prefix = 0;
  // Lower bound on the score of every tuple the traversal did NOT
  // return, taken at the moment it stopped: the priority-queue head for
  // DL/DL+/DG/DG+/PLI, the TA/NRA threshold for the list-based
  // families, the last fully-scanned layer's minimum for Onion, -inf
  // when nothing can be bounded (FullScan mid-scan), +inf after a
  // complete run. Kept for composition (DynamicDualLayerIndex) and
  // diagnostics.
  double frontier_bound = -std::numeric_limits<double>::infinity();
  // Human-readable detail for kInvalidQuery / kError / kShed.
  std::string error;

  bool complete() const { return termination == Termination::kComplete; }
};

// Marks `result` as a complete answer: every returned item certified.
inline void FinalizeComplete(TopKResult& result) {
  result.termination = Termination::kComplete;
  result.certified_prefix = result.items.size();
  result.frontier_bound = std::numeric_limits<double>::infinity();
}

// Marks `result` as a partial answer stopped for `reason`, with
// `frontier_bound` a lower bound on every unreturned tuple's score
// (callers pass -inf when they cannot bound the remainder). `items`
// must already be in canonical order. The certified prefix is the run
// of items strictly below the bound: any unreturned tuple scores >= the
// bound, and ties at the bound may be unreturned tuples with smaller
// ids, so equality never certifies.
void FinalizePartial(TopKResult& result, Termination reason,
                     double frontier_bound);

// Builds the recoverable rejection every family returns for a malformed
// query (no items, Termination::kInvalidQuery, the status message in
// `error`). Replaces the old abort-on-bad-input behaviour.
TopKResult InvalidQueryResult(const Status& status);

// Amortized budget/cancellation checks for a traversal hot loop.
// Construct once per Query call; call Step() once per traversal step
// (heap pop, scan row, sorted-access round) with the running
// tuples-evaluated counter. The unlimited case is a single branch.
// Deadlines are polled every 64 steps to keep clock reads off the hot
// path.
class BudgetGate {
 public:
  explicit BudgetGate(const ExecBudget& budget)
      : max_evals_(budget.max_evals),
        cancel_(budget.cancel),
        deadline_seconds_(budget.deadline_seconds),
        active_(!budget.unlimited()) {}

  bool active() const { return active_; }

  // Returns kComplete while within budget, otherwise the reason to
  // stop. Once a gate has tripped it stays tripped (stable result for
  // loops that consult it twice at one boundary).
  Termination Step(std::size_t evaluated) {
    if (!active_) return Termination::kComplete;
    return StepSlow(evaluated);
  }

 private:
  Termination StepSlow(std::size_t evaluated) {
    if (tripped_ != Termination::kComplete) return tripped_;
    if (max_evals_ != 0 && evaluated >= max_evals_) {
      return tripped_ = Termination::kStepBudget;
    }
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return tripped_ = Termination::kCancelled;
    }
    if (deadline_seconds_ > 0.0 && (++ticks_ & 63u) == 0 &&
        clock_.ElapsedSeconds() > deadline_seconds_) {
      return tripped_ = Termination::kDeadline;
    }
    return Termination::kComplete;
  }

  std::size_t max_evals_;
  const CancelToken* cancel_;
  double deadline_seconds_;
  bool active_;
  Termination tripped_ = Termination::kComplete;
  std::uint64_t ticks_ = 0;
  Stopwatch clock_;
};

// Runs one query, translating a thrown exception into a
// Termination::kError result instead of propagating. QueryBatch workers
// run under this guard so one poisoned query cannot take down the batch
// or the process.
template <typename Fn>
TopKResult GuardedQuery(Fn&& fn) {
  try {
    return std::forward<Fn>(fn)();
  } catch (const std::exception& e) {
    TopKResult result;
    result.termination = Termination::kError;
    result.error = e.what();
    return result;
  } catch (...) {
    TopKResult result;
    result.termination = Termination::kError;
    result.error = "unknown exception in query worker";
    return result;
  }
}

// Admission control and default budgets for QueryBatch.
struct BatchOptions {
  // Queries beyond the first `max_in_flight` are not executed; their
  // slots come back with Termination::kShed. 0 = unbounded.
  std::size_t max_in_flight = 0;
  // Applied to every admitted query whose own budget is unlimited.
  ExecBudget default_budget{};
};

// Interface implemented by FullScan, Onion, DG/DG+, HL/HL+, DL/DL+.
class TopKIndex {
 public:
  virtual ~TopKIndex() = default;

  // Short identifier used in benchmark output, e.g. "DL+".
  virtual std::string name() const = 0;

  // Number of tuples in the indexed relation.
  virtual std::size_t size() const = 0;

  // Dimensionality of the indexed relation when the family can report
  // it; 0 = unknown. The admission-control QueryBatch uses this to
  // validate queries before the shed decision (a malformed query must
  // not consume an in-flight slot); for a family reporting 0 that
  // validation is skipped and Query itself remains the arbiter.
  virtual std::size_t dim() const { return 0; }

  // Answers `query`; thread-compatible (const, no shared mutable state).
  // Never throws or aborts on malformed input: budget expiry yields a
  // certified partial result, bad queries a kInvalidQuery result.
  virtual TopKResult Query(const TopKQuery& query) const = 0;

  // Answers a batch: results[i] corresponds to queries[i], each
  // element-wise identical to a serial Query(queries[i]) call (budgets
  // included -- deadlines are measured per query from its own start, so
  // serial and parallel execution give identical allowances). The
  // default implementation is that serial loop; implementations with
  // per-thread workspaces may parallelize (DualLayerIndex fans the
  // batch out over DRLI_THREADS workers). Worker exceptions surface as
  // kError results in the corresponding slot, never on the process.
  virtual std::vector<TopKResult> QueryBatch(
      const std::vector<TopKQuery>& queries) const;

  // QueryBatch with admission control: the first
  // options.max_in_flight queries run (through the virtual overload
  // above, so the parallel fast paths still apply); the rest are shed
  // deterministically with Termination::kShed. Admitted queries without
  // a budget inherit options.default_budget.
  std::vector<TopKResult> QueryBatch(const std::vector<TopKQuery>& queries,
                                     const BatchOptions& options) const;

  // QueryBatch with batch-level accounting: fills *stats with the
  // Merge of every result's QueryStats plus the batch's own single
  // wall clock. Per-query elapsed_seconds stay per-query; their sum
  // lands in stats->merged.elapsed_seconds (aggregate query-seconds),
  // while stats->wall_seconds is what a QPS computation divides by --
  // under the parallel fast path the two differ by ~the worker count.
  std::vector<TopKResult> QueryBatch(const std::vector<TopKQuery>& queries,
                                     const BatchOptions& options,
                                     BatchStats* stats) const;
};

// Computes the budget left for a coordinator's next sub-query, or the
// reason it must stop before issuing it. Mirrors BudgetGate semantics
// one level up: max_evals meters the cumulative per-partition traversal
// cost, deadlines are measured from the coordinator's own start
// (`timer`). Shared by the sharded scatter-gather coordinator and the
// tiered dynamic index's run merge.
Termination RemainingBudget(const ExecBudget& budget, std::size_t evaluated,
                            const Stopwatch& timer, ExecBudget* sub);

// Validates that the query is well-formed for dimensionality d:
// |weights| == d, every weight finite and >= 0, at least one weight
// strictly positive. Zero weights are accepted uniformly across all
// index families (brute-force reference included): boundary-of-simplex
// queries are exactly what reverse top-k slope intervals and
// constrained scenarios produce, and every traversal invariant in the
// library (dominance => score <=, grouped-corner shard/run bounds,
// the 2-d weight-range chain) only needs non-negative weights. The
// all-zero vector is rejected: it scores every tuple 0 and reduces
// "top-k" to an id sort, which no caller means. k = 0 is legal and
// yields an empty result; k > n is legal and returns all n tuples.
// Returns InvalidArgument instead of aborting -- untrusted callers get
// a recoverable error.
Status ValidateQuery(const TopKQuery& query, std::size_t dim);

}  // namespace drli

#endif  // DRLI_TOPK_QUERY_H_
