// Top-k query model (Definition 1) and the interface every index in the
// library implements, including the cost instrumentation of
// Definition 9 (number of tuples evaluated by the scoring function).

#ifndef DRLI_TOPK_QUERY_H_
#define DRLI_TOPK_QUERY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/point.h"

namespace drli {

// A linear top-k query: strictly positive weights summing to 1, and the
// retrieval size k. Lower scores are better.
struct TopKQuery {
  Point weights;
  std::size_t k = 1;
};

struct ScoredTuple {
  TupleId id = kInvalidTupleId;
  double score = 0.0;
};

// Canonical result order shared by every index family: ascending score
// (lower is better), ties broken by ascending tuple id. All TopKIndex
// implementations return result.items sorted by this rule and resolve
// exact score ties in its favour, so any two families agree on the
// exact (id, score) sequence -- the contract the differential oracle in
// src/testing/ relies on.
inline bool ResultOrderLess(const ScoredTuple& a, const ScoredTuple& b) {
  if (a.score != b.score) return a.score < b.score;
  return a.id < b.id;
}

// Cost accounting (Definition 9): a tuple counts as evaluated when it is
// accessed and its score computed. Pseudo-tuples of the zero layer are
// tracked separately -- they are not relation tuples.
struct QueryStats {
  std::size_t tuples_evaluated = 0;
  std::size_t virtual_evaluated = 0;
  // Wall time of the Query call (seconds). Complements the paper's
  // tuples-evaluated metric in benchmark output; summed by Merge.
  double elapsed_seconds = 0.0;

  void Merge(const QueryStats& other) {
    tuples_evaluated += other.tuples_evaluated;
    virtual_evaluated += other.virtual_evaluated;
    elapsed_seconds += other.elapsed_seconds;
  }
};

struct TopKResult {
  // k tuples in ascending score order (fewer if the relation is small).
  std::vector<ScoredTuple> items;
  QueryStats stats;
  // Relation tuples evaluated, in access order (pseudo-tuples
  // excluded). Feeds the disk-layout simulation in storage/ -- the
  // paper's "tuples in the same layer are stored in the same disk
  // block" discussion.
  std::vector<TupleId> accessed;
};

// Interface implemented by FullScan, Onion, DG/DG+, HL/HL+, DL/DL+.
class TopKIndex {
 public:
  virtual ~TopKIndex() = default;

  // Short identifier used in benchmark output, e.g. "DL+".
  virtual std::string name() const = 0;

  // Number of tuples in the indexed relation.
  virtual std::size_t size() const = 0;

  // Answers `query`; thread-compatible (const, no shared mutable state).
  virtual TopKResult Query(const TopKQuery& query) const = 0;

  // Answers a batch: results[i] corresponds to queries[i], each
  // element-wise identical to a serial Query(queries[i]) call. The
  // default implementation is that serial loop; implementations with
  // per-thread workspaces may parallelize (DualLayerIndex fans the
  // batch out over DRLI_THREADS workers).
  virtual std::vector<TopKResult> QueryBatch(
      const std::vector<TopKQuery>& queries) const;
};

// CHECK-validates that the query is well-formed for dimensionality d:
// |weights| == d, weights strictly positive. k = 0 is legal and yields
// an empty result; k > n is legal and returns all n tuples.
void ValidateQuery(const TopKQuery& query, std::size_t dim);

}  // namespace drli

#endif  // DRLI_TOPK_QUERY_H_
