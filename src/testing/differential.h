// Differential top-k oracle: one harness that builds every index
// family over one dataset and asserts, query by query, that they all
// return the same answer under the canonical (score asc, id asc) order
// of ResultOrderLess. The reference is an independent brute-force scan
// computed inside the harness, so a bug shared by an index family and
// the ScanIndex still surfaces.
//
// Families fall into two tiers:
//  * exact kinds return the identical (id, score) sequence -- every
//    layer/graph/list family resolves ties with the canonical order;
//  * score-only kinds (FA) guarantee the score sequence but may pick
//    either tuple of an exactly tied pair.
// On top of result equality the harness asserts the paper's access
// containment: DL never evaluates more tuples than DG, and DL+ never
// more than DG+ (Theorem 2's cost ordering on shared data).

#ifndef DRLI_TESTING_DIFFERENTIAL_H_
#define DRLI_TESTING_DIFFERENTIAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/point.h"
#include "common/status.h"
#include "core/index_registry.h"
#include "topk/query.h"

namespace drli {

struct DifferentialOptions {
  // Families compared by exact (id, score) sequence. The sdl+ entries
  // are the sharded scatter-gather family at shard counts that cover
  // the degenerate (S=1), even-split, both-partitioner, and
  // n-not-divisible-by-S cases; all must merge to the bit-identical
  // unsharded answer. The tdl+ entries are the tiered dynamic family
  // (relation fed through Insert, so the run table is live): a tiny
  // memtable forcing many runs and compactions, and a capacity that
  // leaves a partially filled memtable plus runs straddling ties.
  std::vector<std::string> exact_kinds = {
      "scan", "onion",  "pli",    "ta", "nra",  "prefer", "lpta",
      "dg",   "dg+",    "hl",     "hl+", "dl",  "dl+",    "sdl+1",
      "sdl+2r", "sdl+4h", "sdl+7r", "tdl+7", "tdl+32"};
  // Families compared by score sequence only (tie ids may differ).
  std::vector<std::string> score_only_kinds = {"fa"};
  // Assert tuples_evaluated(dl) <= tuples_evaluated(dg) and
  // dl+ <= dg+ whenever both members of a pair are present.
  bool check_access_containment = true;
};

class DifferentialHarness {
 public:
  // Builds one index per configured kind over a copy of `points`.
  static StatusOr<DifferentialHarness> Build(
      const PointSet& points, const DifferentialOptions& options = {});

  // Runs `query` through every family against the brute-force
  // reference. Returns one human-readable line per mismatch; empty
  // means all families agree.
  std::vector<std::string> CheckQuery(const TopKQuery& query) const;

  // Budgeted-execution oracle: runs `query` (whose embedded ExecBudget
  // is expected to fire mid-traversal) and asserts that every family
  // returns a well-formed result whose certified prefix is a correct
  // prefix of the exact answer, and whose frontier bound really bounds
  // every tuple it did not return. Complete results are held to full
  // equality. `only_kind` restricts the check to one family; `partials`
  // (optional) is incremented once per family result that terminated
  // early.
  std::vector<std::string> CheckBudgetedQuery(
      const TopKQuery& query, const std::string& only_kind = std::string(),
      std::size_t* partials = nullptr) const;

  // Unbudgeted traversal cost of `query` per family, in the unit each
  // family's budget gate charges (tuples_evaluated). Drives exhaustive
  // every-step-index fault sweeps.
  std::vector<std::pair<std::string, std::size_t>> UnbudgetedCosts(
      const TopKQuery& query) const;

  // The tie-broken brute-force answer (exposed for tests).
  std::vector<ScoredTuple> Reference(const TopKQuery& query) const;

  const PointSet& points() const { return points_; }
  std::size_t num_families() const { return families_.size(); }

 private:
  DifferentialHarness() : points_(1) {}

  struct Family {
    std::string kind;
    bool exact = true;
    std::unique_ptr<TopKIndex> index;
  };

  PointSet points_;
  DifferentialOptions options_;
  std::vector<Family> families_;
};

}  // namespace drli

#endif  // DRLI_TESTING_DIFFERENTIAL_H_
