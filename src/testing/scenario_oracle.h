// Differential oracle for the scenarios layer (src/scenarios/):
// constrained, diversified, and reverse top-k, each compared against
// its brute-force reference over seed-derived probes. The companion of
// testing/differential.h one workload up: where the differential
// harness pits 20 index families against one brute-force scan on plain
// top-k, this one pits the three accelerated scenario engines (DL+,
// sharded, tiered) against the scenario-specific references.
//
// Probes are deterministic in the seed, so every failure replays. Box
// probes are built FROM data coordinates (two sampled tuples span the
// box), which makes exact FP ties on box edges the common case rather
// than a corner case; degenerate probes add the empty box, the
// all-space box, point boxes, k > matching-tuples, and boundary
// (zero-weight) weight vectors.

#ifndef DRLI_TESTING_SCENARIO_ORACLE_H_
#define DRLI_TESTING_SCENARIO_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/point.h"

namespace drli {

struct ScenarioOracleOptions {
  // Random constrained probes (each runs on DL+, sharded, tiered).
  std::size_t constrained_probes = 3;
  // Budgeted re-runs per constrained probe (certified-prefix checks).
  std::size_t budget_probes = 2;
  // Also run the fixed degenerate-box battery.
  bool degenerate_boxes = true;
  // Diversified probes (greedy vs. brute-force greedy).
  std::size_t diversified_probes = 2;
  // Reverse top-k probes (d == 2 datasets only).
  std::size_t reverse_probes = 3;
};

// Builds a DL+ index, a sharded index, and a tiered index over
// `points` and drives all three scenario families against their
// brute-force references. Returns one human-readable line per
// mismatch; empty means every probe agreed.
std::vector<std::string> CheckScenarioFamilies(
    const PointSet& points, std::uint64_t seed,
    const ScenarioOracleOptions& options = {});

}  // namespace drli

#endif  // DRLI_TESTING_SCENARIO_ORACLE_H_
