#include "testing/differential.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

namespace drli {

namespace {

// Scores closer than this are one tie class for the relaxed
// comparison; genuinely distinct scores on the supported datasets are
// separated by far more, ulp-level splits by far less.
constexpr double kScoreEps = 1e-9;

std::string DescribeQuery(const TopKQuery& query) {
  std::ostringstream out;
  out << "k=" << query.k << " w=(";
  for (std::size_t i = 0; i < query.weights.size(); ++i) {
    out << (i ? "," : "") << query.weights[i];
  }
  out << ")";
  return out.str();
}

}  // namespace

StatusOr<DifferentialHarness> DifferentialHarness::Build(
    const PointSet& points, const DifferentialOptions& options) {
  DifferentialHarness harness;
  harness.points_ = points;
  harness.options_ = options;
  auto add = [&](const std::string& kind, bool exact) -> Status {
    IndexBuildConfig config;
    config.kind = kind;
    StatusOr<std::unique_ptr<TopKIndex>> built = BuildIndex(config, points);
    if (!built.ok()) return built.status();
    harness.families_.push_back(Family{kind, exact, std::move(built).value()});
    return Status::Ok();
  };
  for (const std::string& kind : options.exact_kinds) {
    Status status = add(kind, /*exact=*/true);
    if (!status.ok()) return status;
  }
  for (const std::string& kind : options.score_only_kinds) {
    Status status = add(kind, /*exact=*/false);
    if (!status.ok()) return status;
  }
  return harness;
}

std::vector<ScoredTuple> DifferentialHarness::Reference(
    const TopKQuery& query) const {
  std::vector<ScoredTuple> all;
  all.reserve(points_.size());
  const PointView w(query.weights);
  for (std::size_t id = 0; id < points_.size(); ++id) {
    all.push_back(ScoredTuple{static_cast<TupleId>(id),
                              Score(w, points_[id])});
  }
  std::sort(all.begin(), all.end(), ResultOrderLess);
  all.resize(std::min<std::size_t>(query.k, all.size()));
  return all;
}

std::vector<std::string> DifferentialHarness::CheckQuery(
    const TopKQuery& query) const {
  std::vector<std::string> failures;
  const PointView w(query.weights);
  std::vector<double> scores(points_.size());
  for (std::size_t id = 0; id < points_.size(); ++id) {
    scores[id] = Score(w, points_[id]);
  }
  std::vector<ScoredTuple> want;
  want.reserve(points_.size());
  for (std::size_t id = 0; id < points_.size(); ++id) {
    want.push_back(ScoredTuple{static_cast<TupleId>(id), scores[id]});
  }
  std::sort(want.begin(), want.end(), ResultOrderLess);
  want.resize(std::min<std::size_t>(query.k, want.size()));

  // A query is FP-robust when every pair of dataset scores is either
  // bitwise identical (an exact tie the canonical order resolves by
  // id) or separated by more than the tolerance. Geometric families
  // cannot honor ulp-level splits -- coplanar or accumulation-order
  // effects legitimately reorder those -- so such queries fall back to
  // tie-class comparison.
  bool robust = true;
  {
    std::vector<double> sorted = scores;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double gap = sorted[i + 1] - sorted[i];
      if (gap > 0.0 && gap <= kScoreEps) {
        robust = false;
        break;
      }
    }
  }

  std::size_t kth_ties = 0;  // tuples bitwise-tying the k-th answer
  if (!want.empty()) {
    for (double score : scores) kth_ties += score == want.back().score;
  }

  std::size_t dl_cost = 0, dg_cost = 0, dlp_cost = 0, dgp_cost = 0;
  bool have_dl = false, have_dg = false, have_dlp = false, have_dgp = false;
  for (const Family& family : families_) {
    const TopKResult result = family.index->Query(query);
    if (family.kind == "dl") {
      dl_cost = result.stats.tuples_evaluated;
      have_dl = true;
    } else if (family.kind == "dg") {
      dg_cost = result.stats.tuples_evaluated;
      have_dg = true;
    } else if (family.kind == "dl+") {
      dlp_cost = result.stats.tuples_evaluated;
      have_dlp = true;
    } else if (family.kind == "dg+") {
      dgp_cost = result.stats.tuples_evaluated;
      have_dgp = true;
    }

    auto fail = [&](const std::string& what) {
      failures.push_back("[" + family.kind + "] " + DescribeQuery(query) +
                         ": " + what);
    };
    if (result.items.size() != want.size()) {
      std::ostringstream out;
      out << "returned " << result.items.size() << " items, want "
          << want.size();
      fail(out.str());
      continue;
    }

    // Universal structure: canonical order, no duplicate ids, reported
    // scores match the tuples they cite.
    std::unordered_set<TupleId> ids;
    bool structure_ok = true;
    for (std::size_t rank = 0; structure_ok && rank < result.items.size();
         ++rank) {
      const ScoredTuple& got = result.items[rank];
      if (got.id >= points_.size()) {
        std::ostringstream out;
        out << "rank " << rank << " cites unknown id " << got.id;
        fail(out.str());
        structure_ok = false;
      } else if (!ids.insert(got.id).second) {
        std::ostringstream out;
        out << "duplicate id " << got.id << " in the result";
        fail(out.str());
        structure_ok = false;
      } else if (std::abs(got.score - scores[got.id]) > kScoreEps) {
        std::ostringstream out;
        out << "rank " << rank << " reports score " << got.score
            << " for id " << got.id << ", tuple scores " << scores[got.id];
        fail(out.str());
        structure_ok = false;
      } else if (rank > 0 &&
                 ResultOrderLess(got, result.items[rank - 1])) {
        std::ostringstream out;
        out << "ranks " << rank - 1 << " and " << rank
            << " violate the canonical (score, id) order";
        fail(out.str());
        structure_ok = false;
      }
    }
    if (!structure_ok) continue;

    for (std::size_t rank = 0; rank < want.size(); ++rank) {
      const ScoredTuple& got = result.items[rank];
      const bool exact_ok =
          got.score == want[rank].score &&
          (!family.exact || got.id == want[rank].id);
      if (exact_ok) continue;
      if (!robust && std::abs(got.score - want[rank].score) <= kScoreEps &&
          std::abs(scores[got.id] - want[rank].score) <= kScoreEps) {
        continue;  // inside an ulp-ambiguous tie class
      }
      std::ostringstream out;
      out << "rank " << rank << " is (id " << got.id << ", score "
          << got.score << "), want (id " << want[rank].id << ", score "
          << want[rank].score << ")";
      fail(out.str());
      break;
    }
  }

  // Theorem 2's cost containment on shared data: the dual-resolution
  // traversal never evaluates more than the single-resolution one.
  // Tie-probe charges are bounded by the k-th answer's bitwise tie
  // class, and ulp-ambiguous queries can shift layer stops, so the
  // assertion carries that slack and only fires on robust queries.
  if (options_.check_access_containment && robust) {
    const std::size_t slack = kth_ties > 0 ? kth_ties - 1 : 0;
    if (have_dl && have_dg && dl_cost > dg_cost + slack) {
      std::ostringstream out;
      out << "[dl] " << DescribeQuery(query) << ": evaluated " << dl_cost
          << " tuples, more than dg's " << dg_cost << " plus tie slack "
          << slack;
      failures.push_back(out.str());
    }
    // In 2-d DL+ answers through the exact weight-range table while
    // DG+ uses clustered pseudo-tuples -- different zero layers, so
    // pointwise containment only holds where both build the same L0
    // (d >= 3, identical clustering inputs).
    if (points_.dim() >= 3 && have_dlp && have_dgp &&
        dlp_cost > dgp_cost + slack) {
      std::ostringstream out;
      out << "[dl+] " << DescribeQuery(query) << ": evaluated " << dlp_cost
          << " tuples, more than dg+'s " << dgp_cost << " plus tie slack "
          << slack;
      failures.push_back(out.str());
    }
  }
  return failures;
}

std::vector<std::pair<std::string, std::size_t>>
DifferentialHarness::UnbudgetedCosts(const TopKQuery& query) const {
  TopKQuery unlimited = query;
  unlimited.budget = ExecBudget{};
  std::vector<std::pair<std::string, std::size_t>> costs;
  costs.reserve(families_.size());
  for (const Family& family : families_) {
    costs.emplace_back(family.kind,
                       family.index->Query(unlimited).stats.tuples_evaluated);
  }
  return costs;
}

std::vector<std::string> DifferentialHarness::CheckBudgetedQuery(
    const TopKQuery& query, const std::string& only_kind,
    std::size_t* partials) const {
  std::vector<std::string> failures;
  const PointView w(query.weights);
  std::vector<double> scores(points_.size());
  for (std::size_t id = 0; id < points_.size(); ++id) {
    scores[id] = Score(w, points_[id]);
  }
  std::vector<ScoredTuple> want;
  want.reserve(points_.size());
  for (std::size_t id = 0; id < points_.size(); ++id) {
    want.push_back(ScoredTuple{static_cast<TupleId>(id), scores[id]});
  }
  std::sort(want.begin(), want.end(), ResultOrderLess);
  want.resize(std::min<std::size_t>(query.k, want.size()));

  // Same ulp-ambiguity fallback as CheckQuery: geometric families may
  // legitimately reorder tuples whose scores differ by less than the
  // tolerance.
  bool robust = true;
  {
    std::vector<double> sorted = scores;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const double gap = sorted[i + 1] - sorted[i];
      if (gap > 0.0 && gap <= kScoreEps) {
        robust = false;
        break;
      }
    }
  }

  for (const Family& family : families_) {
    if (!only_kind.empty() && family.kind != only_kind) continue;
    const TopKResult result = family.index->Query(query);
    auto fail = [&](const std::string& what) {
      failures.push_back("[" + family.kind + " budget] " +
                         DescribeQuery(query) + ": " + what);
    };

    if (result.termination == Termination::kInvalidQuery ||
        result.termination == Termination::kError ||
        result.termination == Termination::kShed) {
      fail(std::string("valid query rejected with ") +
           TerminationName(result.termination) + ": " + result.error);
      continue;
    }
    if (partials != nullptr && !result.complete()) ++(*partials);
    if (result.certified_prefix > result.items.size()) {
      std::ostringstream out;
      out << "certified prefix " << result.certified_prefix
          << " exceeds the " << result.items.size() << " returned items";
      fail(out.str());
      continue;
    }
    if (result.complete() &&
        result.certified_prefix != result.items.size()) {
      fail("complete result does not certify all its items");
      continue;
    }
    if (result.complete() && result.items.size() != want.size()) {
      std::ostringstream out;
      out << "complete result has " << result.items.size()
          << " items, want " << want.size();
      fail(out.str());
      continue;
    }

    // Universal structure (canonical order, no duplicates, honest
    // scores) holds for partial results too.
    std::unordered_set<TupleId> ids;
    bool structure_ok = true;
    for (std::size_t rank = 0; structure_ok && rank < result.items.size();
         ++rank) {
      const ScoredTuple& got = result.items[rank];
      if (got.id >= points_.size()) {
        std::ostringstream out;
        out << "rank " << rank << " cites unknown id " << got.id;
        fail(out.str());
        structure_ok = false;
      } else if (!ids.insert(got.id).second) {
        std::ostringstream out;
        out << "duplicate id " << got.id << " in the result";
        fail(out.str());
        structure_ok = false;
      } else if (std::abs(got.score - scores[got.id]) > kScoreEps) {
        std::ostringstream out;
        out << "rank " << rank << " reports score " << got.score
            << " for id " << got.id << ", tuple scores " << scores[got.id];
        fail(out.str());
        structure_ok = false;
      } else if (rank > 0 && ResultOrderLess(got, result.items[rank - 1])) {
        std::ostringstream out;
        out << "ranks " << rank - 1 << " and " << rank
            << " violate the canonical (score, id) order";
        fail(out.str());
        structure_ok = false;
      }
    }
    if (!structure_ok) continue;

    // The certified prefix must be a correct prefix of the exact
    // answer (the whole point of certification).
    const std::size_t certified = result.complete()
                                      ? result.items.size()
                                      : result.certified_prefix;
    if (certified > want.size()) {
      std::ostringstream out;
      out << "certified prefix " << certified << " exceeds the exact "
          << "answer's " << want.size() << " items";
      fail(out.str());
      continue;
    }
    bool prefix_ok = true;
    for (std::size_t rank = 0; rank < certified; ++rank) {
      const ScoredTuple& got = result.items[rank];
      const bool exact_ok =
          got.score == want[rank].score &&
          (!family.exact || got.id == want[rank].id);
      if (exact_ok) continue;
      if (!robust && std::abs(got.score - want[rank].score) <= kScoreEps &&
          std::abs(scores[got.id] - want[rank].score) <= kScoreEps) {
        continue;  // inside an ulp-ambiguous tie class
      }
      std::ostringstream out;
      out << "certified rank " << rank << " is (id " << got.id
          << ", score " << got.score << "), want (id " << want[rank].id
          << ", score " << want[rank].score << ")";
      fail(out.str());
      prefix_ok = false;
      break;
    }
    if (!prefix_ok) continue;

    // Frontier soundness: every tuple the partial result did not
    // return must score at or above the reported frontier (tolerance
    // for LP / knapsack bounds computed in different FP orders).
    if (!result.complete() &&
        result.frontier_bound >
            -std::numeric_limits<double>::infinity()) {
      for (std::size_t id = 0; id < points_.size(); ++id) {
        if (ids.count(static_cast<TupleId>(id))) continue;
        if (scores[id] < result.frontier_bound - kScoreEps) {
          std::ostringstream out;
          out << "unreturned id " << id << " scores " << scores[id]
              << ", below the reported frontier " << result.frontier_bound;
          fail(out.str());
          break;
        }
      }
    }
  }
  return failures;
}

}  // namespace drli
