// Snapshot fault injection: systematically corrupts an index snapshot
// on disk and asserts that LoadDualLayerIndex rejects every mutant with
// a clean Status (never a crash, hang, or -- for checksummed v2 files
// -- a silent success).
//
// Three mutation families:
//  * truncation at every section boundary and one byte around it;
//  * random single-byte flips (position and bit drawn from a seed);
//  * adversarial metadata patches -- huge/zero lengths, out-of-range or
//    misaligned offsets, bogus header geometry -- with the CRCs fixed
//    up so the mutation reaches the bounds-checking code instead of
//    dying at the checksum gate.
//
// For v2 every mutant must fail to load (the format is fully
// tamper-evident). For v1 random flips only assert no-crash: the
// legacy stream has no checksums, which is the motivation for v2;
// adversarial length prefixes must still be rejected by the bounded
// reader.

#ifndef DRLI_TESTING_FAULT_INJECT_H_
#define DRLI_TESTING_FAULT_INJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/point.h"
#include "core/snapshot_format.h"
#include "topk/query.h"

namespace drli {
namespace testing {

struct FaultSweepOptions {
  std::uint64_t seed = 1;
  // Random single-byte flips to try (DRLI_FAULT_FLIPS overrides in the
  // fuzz driver; the acceptance sweep uses >= 1000).
  std::size_t num_flips = 1000;
};

struct FaultSweepReport {
  std::size_t cases = 0;       // mutants attempted
  std::size_t rejected = 0;    // load returned Corruption / IoError
  std::size_t undetected = 0;  // mutant loaded OK (only legal for v1 flips)
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

// Runs the sweep against the snapshot at `path` (either format; the
// family mix adapts to the version). Mutants are written next to
// `path` and removed afterwards. Every mutated load runs both the mmap
// and the owning-read path.
FaultSweepReport RunSnapshotFaultSweep(const std::string& path,
                                       const FaultSweepOptions& options = {});

// --- budget fault injection ---
//
// Deterministic execution-budget faults: for every index family and
// every step index s of its unbudgeted traversal, re-run the query
// with max_evals = s (and, optionally, with a cancel token fused to
// trip at the s-th poll) and assert through the differential oracle
// that the partial result is well-formed, its certified prefix is a
// correct prefix of the exact answer, and its frontier bound really
// bounds every unreturned tuple.

struct BudgetFaultOptions {
  // Check every stride-th step index (1 = exhaustive).
  std::size_t stride = 1;
  // Also fire a CancelToken fuse at each step index (doubles the work).
  bool cancel_faults = true;
  // Cap on step indices per (family, query); 0 = no cap.
  std::size_t max_steps_per_family = 0;
};

struct BudgetFaultReport {
  std::size_t cases = 0;      // budgeted queries executed
  std::size_t partials = 0;   // results that terminated early
  std::size_t completes = 0;  // budget armed but never fired
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

// Runs the sweep for every query over one dataset. The queries must be
// valid for `points` (the oracle treats a rejection as a violation).
BudgetFaultReport RunBudgetFaultSweep(const PointSet& points,
                                      const std::vector<TopKQuery>& queries,
                                      const BudgetFaultOptions& options = {});

// --- tiered-index crash recovery ---
//
// Simulates crashes around SaveTieredIndex's write schedule (runs
// first, each atomic, generation manifest last) and corruption of the
// written files. The sweep builds a tiered index through a seeded
// mutation trace, saves generation A, mutates further, saves
// generation B capturing its exact write order, and then:
//  * replays every prefix of B's writes over a copy of A's files --
//    every prefix must load cleanly and answer exactly as the last
//    durable generation (A until B's manifest commits, B after);
//  * truncates B's manifest at every byte (strided above
//    truncation_cap) -- every cut must be rejected with a clean
//    Corruption/IoError, never a crash or a silent success;
//  * truncates one of B's run snapshots at every v2 section boundary
//    and one byte around it -- same requirement;
//  * applies seeded single-byte flips to the manifest and a run file
//    -- both are fully checksummed, so every flip must be rejected.

struct TieredFaultOptions {
  std::uint64_t seed = 1;
  // Random single-byte flips to try across the manifest + a run file.
  std::size_t num_flips = 400;
  // Mutation-trace ops applied between generation A and generation B.
  std::size_t mutations_between = 48;
  // Manifest truncation is exhaustive (every byte) up to this size;
  // larger manifests are cut at evenly strided positions.
  std::size_t truncation_cap = 4096;
};

struct TieredFaultReport {
  std::size_t cases = 0;               // mutants + crash points attempted
  std::size_t rejected = 0;            // corrupt mutants cleanly rejected
  std::size_t recovered_previous = 0;  // crash prefixes that recovered A
  std::size_t recovered_current = 0;   // full write sets that loaded B
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

// Runs the sweep inside `scratch_dir` (created if missing; its contents
// are removed at the end).
TieredFaultReport RunTieredFaultSweep(const std::string& scratch_dir,
                                      const TieredFaultOptions& options = {});

// --- low-level helpers, shared with tests ---

std::vector<std::uint8_t> ReadFileBytes(const std::string& path);
void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes);

// In-memory editor for a well-formed v2 snapshot that keeps the file
// self-consistent: any mutation through it re-seals the affected
// section CRC, the section table CRC and the header CRC. Tests use it
// to plant semantically corrupt but checksum-valid payloads (e.g. a
// coarse-layer permutation the loader accepts but CheckIndex rejects).
class SnapshotV2Editor {
 public:
  // CHECK-fails unless `bytes` starts with a v2 header.
  explicit SnapshotV2Editor(std::vector<std::uint8_t> bytes);

  snapshot::HeaderV2 header() const;
  // Overwrites the header; recomputes header_crc first unless
  // `reseal` is false (for planting deliberately bad header CRCs).
  void SetHeader(const snapshot::HeaderV2& header, bool reseal = true);

  std::size_t num_sections() const;
  snapshot::SectionEntry entry(std::size_t i) const;
  // Overwrites entry `i` and re-seals the table and header CRCs. The
  // entry's own `crc` field is stored as given (callers patch it when
  // they mutate the payload through PatchSection, and leave it stale
  // on purpose for adversarial metadata mutants).
  void SetEntry(std::size_t i, const snapshot::SectionEntry& entry);

  // Index into the entry table of the section of `kind`; -1 if absent.
  int FindSection(snapshot::SectionKind kind) const;
  // Overwrites `len` payload bytes at `offset_in_section` and re-seals
  // the section CRC (and table/header CRCs). CHECK-fails out of range.
  void PatchSection(snapshot::SectionKind kind, std::uint64_t offset_in_section,
                    const void* data, std::size_t len);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  void ResealTable();

  std::vector<std::uint8_t> bytes_;
};

}  // namespace testing
}  // namespace drli

#endif  // DRLI_TESTING_FAULT_INJECT_H_
