#include "testing/server_faults.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "core/dual_layer.h"
#include "core/serialization.h"
#include "data/generator.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/serving_engine.h"

namespace drli {
namespace testing {

namespace {

namespace fs = std::filesystem;

constexpr char kSnapshotA[] = "gen-a.v2";
constexpr char kSnapshotB[] = "gen-b.v2";

std::vector<std::uint8_t> MakeQueryFrame(const Point& weights,
                                         std::uint64_t k,
                                         std::uint32_t request_id) {
  wire::Request request;
  request.verb = wire::Verb::kQuery;
  wire::WireQuery query;
  query.weights = weights;
  query.k = k;
  request.queries.push_back(std::move(query));
  std::vector<std::uint8_t> frame;
  (void)wire::AppendFrame(request_id, wire::EncodeRequest(request), &frame);
  return frame;
}

// Reads frames until timeout/EOF. Returns false on a frame that fails
// to parse -- the one thing the server must never put on the wire.
bool DrainReplies(server::DrliClient& client, std::size_t* malformed_replies) {
  while (true) {
    auto frame = client.ReadFrame();
    if (!frame.ok()) {
      // EOF and timeouts end the case; a Corruption status means the
      // server emitted an unparseable frame.
      return frame.status().code() != StatusCode::kCorruption;
    }
    if (!frame.value().payload.empty() &&
        frame.value().payload[0] ==
            static_cast<std::uint8_t>(wire::ReplyStatus::kMalformed)) {
      ++*malformed_replies;
    }
  }
}

bool SameAnswer(const std::vector<wire::WireItem>& got,
                const TopKResult& expected) {
  if (got.size() != expected.items.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i].id != expected.items[i].id ||
        got[i].score != expected.items[i].score) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string ServerFaultReport::ToString() const {
  std::ostringstream out;
  out << "server fault sweep: " << cases << " cases, " << malformed_replies
      << " malformed rejections, " << disconnects << " disconnects, "
      << partials << " storm partials, " << sheds << " sheds, "
      << reload_swaps << " reload swaps, " << violations.size()
      << " violations";
  for (const std::string& v : violations) out << "\n  VIOLATION: " << v;
  return out.str();
}

ServerFaultReport RunServerFaultSweep(const std::string& scratch_dir,
                                      const ServerFaultOptions& options) {
  ServerFaultReport report;
  std::mt19937_64 rng(options.seed);
  fs::create_directories(scratch_dir);

  // Two generations with different relations: reload races must show
  // every answer belonging exactly to one of them.
  PointSet points_a = GenerateAnticorrelated(400, 3, options.seed + 101);
  PointSet points_b = GenerateIndependent(400, 3, options.seed + 202);
  DualLayerIndex index_a = DualLayerIndex::Build(std::move(points_a));
  DualLayerIndex index_b = DualLayerIndex::Build(std::move(points_b));
  if (!SaveDualLayerIndex(index_a, scratch_dir + "/" + kSnapshotA).ok() ||
      !SaveDualLayerIndex(index_b, scratch_dir + "/" + kSnapshotB).ok() ||
      !server::PublishSnapshot(scratch_dir, kSnapshotA).ok()) {
    report.violations.push_back("failed to stage snapshots in " + scratch_dir);
    return report;
  }

  const Point weights = {0.2, 0.3, 0.5};
  TopKQuery probe_query;
  probe_query.weights = weights;
  probe_query.k = 5;
  const TopKResult expected_a = index_a.Query(probe_query);
  const TopKResult expected_b = index_b.Query(probe_query);

  server::ServerOptions server_options;
  server_options.num_loops = 2;
  server_options.num_workers = 2;
  server_options.max_in_flight = 4;
  server_options.reload_poll_seconds = 0.005;
  server_options.retry_after_ms = 20;
  server_options.test_worker_delay_ms = 0.0;
  server::TopKServer topk_server;
  Status start = topk_server.Start(scratch_dir, server_options);
  if (!start.ok()) {
    report.violations.push_back("server start failed: " + start.message());
    return report;
  }
  const std::uint16_t port = topk_server.port();

  auto probe_alive = [&](const char* context) {
    server::DrliClient probe;
    if (!probe.Connect("127.0.0.1", port, 5.0).ok()) {
      report.violations.push_back(std::string(context) +
                                  ": server unreachable after fault");
      return;
    }
    auto health = probe.Health();
    if (!health.ok()) {
      report.violations.push_back(std::string(context) +
                                  ": health probe failed: " +
                                  health.status().ToString());
    }
  };

  // --- corrupt frames ---
  const std::vector<std::uint8_t> valid_frame =
      MakeQueryFrame(weights, 5, 7777);
  for (std::size_t i = 0; i < options.frame_faults; ++i) {
    ++report.cases;
    server::DrliClient client;
    if (!client.Connect("127.0.0.1", port, 2.0).ok()) {
      report.violations.push_back("connect failed during frame faults");
      break;
    }
    std::vector<std::uint8_t> bytes = valid_frame;
    const int mode = static_cast<int>(rng() % 3);
    if (mode == 0) {
      // Single-bit flip anywhere in the frame.
      const std::size_t pos = rng() % bytes.size();
      bytes[pos] ^= static_cast<std::uint8_t>(1u << (rng() % 8));
      (void)client.SendRaw(bytes);
    } else if (mode == 1) {
      // Truncated prefix, then the client vanishes mid-frame.
      const std::size_t cut = 1 + rng() % (bytes.size() - 1);
      bytes.resize(cut);
      (void)client.SendRaw(bytes);
      ++report.disconnects;
      client.Close();
      probe_alive("truncated frame");
      continue;
    } else {
      // Raw garbage.
      bytes.resize(8 + rng() % 56);
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
      (void)client.SendRaw(bytes);
    }
    // A trailing valid request bounds the wait: if the fault left the
    // stream parseable, this earns a reply; if not, the server has
    // already rejected and closed.
    (void)client.SendRaw(MakeQueryFrame(weights, 3, 8888));
    if (!DrainReplies(client, &report.malformed_replies)) {
      report.violations.push_back(
          "server emitted an unparseable frame after fault case " +
          std::to_string(i));
    }
    client.Close();
    if (i % 16 == 0) probe_alive("frame fault");
  }

  // --- mid-request disconnects around whole requests ---
  for (std::size_t i = 0; i < 8; ++i) {
    ++report.cases;
    ++report.disconnects;
    server::DrliClient client;
    if (!client.Connect("127.0.0.1", port, 2.0).ok()) continue;
    // Full request, then vanish without reading the reply: the server
    // hits EPIPE/RST on its send path and must shrug it off.
    (void)client.SendRaw(MakeQueryFrame(weights, 50, 99));
    client.Close();
  }
  probe_alive("disconnect burst");

  // --- oversized reply budgets: well-formed requests whose replies
  // could not fit one frame must be refused, never abort the process --
  {
    server::DrliClient client;
    if (client.Connect("127.0.0.1", port, 5.0).ok()) {
      ++report.cases;
      wire::WireQuery query;
      query.weights = weights;
      query.k = wire::kMaxWireItems + 1;
      auto result = client.Query(query);
      if (!result.ok() ||
          result.value().status != wire::ReplyStatus::kInvalidQuery) {
        report.violations.push_back(
            "oversized k not rejected with kInvalidQuery");
      }
      ++report.cases;
      std::vector<wire::WireQuery> batch(wire::kMaxBatchQueries);
      for (auto& wq : batch) {
        wq.weights = weights;
        wq.k = 1000;  // modest per query, over the cap combined
      }
      auto batch_result = client.Batch(batch);
      if (!batch_result.ok() || batch_result.value().empty() ||
          batch_result.value()[0].status !=
              wire::ReplyStatus::kInvalidQuery) {
        report.violations.push_back(
            "oversized batch budget not rejected with kInvalidQuery");
      }
    } else {
      report.violations.push_back("connect failed for reply budget cases");
    }
    probe_alive("reply budget");
  }

  // --- reload-during-query races ---
  {
    std::atomic<bool> publishing{true};
    std::thread publisher([&] {
      for (std::size_t r = 0; r < options.reload_races; ++r) {
        const char* name = (r % 2 == 0) ? kSnapshotB : kSnapshotA;
        (void)server::PublishSnapshot(scratch_dir, name);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      publishing.store(false);
    });
    server::DrliClient client;
    if (client.Connect("127.0.0.1", port, 5.0).ok()) {
      std::uint64_t last_generation = 0;
      while (publishing.load()) {
        ++report.cases;
        wire::WireQuery query;
        query.weights = weights;
        query.k = 5;
        auto result = client.Query(query);
        if (!result.ok()) {
          report.violations.push_back("query failed during reload race: " +
                                      result.status().ToString());
          break;
        }
        const wire::WireResult& r = result.value();
        if (r.status != wire::ReplyStatus::kOk) {
          report.violations.push_back(
              "non-ok reply during reload race: " +
              std::string(wire::ReplyStatusName(r.status)) + " " + r.message);
          continue;
        }
        if (!SameAnswer(r.items, expected_a) && !SameAnswer(r.items, expected_b)) {
          report.violations.push_back(
              "reload race answer matches neither generation (generation " +
              std::to_string(r.generation) + ")");
        }
        if (r.generation < last_generation) {
          report.violations.push_back("generation went backwards: " +
                                      std::to_string(last_generation) + " -> " +
                                      std::to_string(r.generation));
        }
        last_generation = r.generation;
      }
    } else {
      report.violations.push_back("connect failed for reload race");
    }
    publisher.join();
    report.reload_swaps = topk_server.counters().reloads;
  }

  // --- deadline storms (pin generation A first) ---
  {
    server::DrliClient client;
    if (client.Connect("127.0.0.1", port, 5.0).ok()) {
      (void)server::PublishSnapshot(scratch_dir, kSnapshotA);
      (void)client.Reload();
      auto inspect = client.Inspect();
      if (!inspect.ok() || inspect.value().snapshot != kSnapshotA) {
        report.violations.push_back("failed to pin generation A for storm");
      }
      for (std::size_t i = 0; i < options.deadline_storm; ++i) {
        ++report.cases;
        wire::WireQuery query;
        query.weights = weights;
        query.k = 5;
        if (i % 3 == 0) {
          query.deadline_ms = 1e-6;  // expired before the worker starts
        } else if (i % 3 == 1) {
          query.max_evals = 1 + i % 4;
        }  // else: unbudgeted control query
        auto result = client.Query(query);
        if (!result.ok()) {
          report.violations.push_back("storm query failed: " +
                                      result.status().ToString());
          continue;
        }
        const wire::WireResult& r = result.value();
        if (r.status != wire::ReplyStatus::kOk) {
          report.violations.push_back(
              "storm reply not ok: " +
              std::string(wire::ReplyStatusName(r.status)));
          continue;
        }
        if (r.termination != static_cast<std::uint8_t>(Termination::kComplete)) {
          ++report.partials;
        }
        if (r.certified_prefix > r.items.size()) {
          report.violations.push_back("certified prefix exceeds item count");
          continue;
        }
        // The certified prefix must be an exact prefix of the true
        // answer -- the wire-level degradation contract.
        for (std::size_t j = 0; j < r.certified_prefix; ++j) {
          if (j >= expected_a.items.size() ||
              r.items[j].id != expected_a.items[j].id ||
              r.items[j].score != expected_a.items[j].score) {
            report.violations.push_back(
                "storm certified prefix diverges from the exact answer");
            break;
          }
        }
      }
    } else {
      report.violations.push_back("connect failed for deadline storm");
    }
  }

  // --- overload: concurrent clients past the in-flight cap ---
  {
    std::atomic<std::size_t> sheds{0};
    std::atomic<std::size_t> bad_sheds{0};
    std::atomic<std::size_t> failures{0};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < options.overload_clients; ++c) {
      clients.emplace_back([&, c] {
        server::DrliClient client;
        if (!client.Connect("127.0.0.1", port, 5.0).ok()) {
          failures.fetch_add(1);
          return;
        }
        for (std::size_t i = 0; i < 12; ++i) {
          wire::WireQuery query;
          query.weights = weights;
          query.k = 10 + (c % 3);
          auto result = client.Query(query);
          if (!result.ok()) {
            failures.fetch_add(1);
            return;
          }
          const wire::WireResult& r = result.value();
          if (r.status == wire::ReplyStatus::kOverloaded) {
            sheds.fetch_add(1);
            if (r.retry_after_ms == 0) bad_sheds.fetch_add(1);
          } else if (r.status != wire::ReplyStatus::kOk) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
    report.cases += options.overload_clients * 12;
    report.sheds = sheds.load();
    if (bad_sheds.load() > 0) {
      report.violations.push_back("kOverloaded reply without a retry hint");
    }
    if (failures.load() > 0) {
      report.violations.push_back(std::to_string(failures.load()) +
                                  " overload clients saw hard failures");
    }
  }

  probe_alive("final");
  topk_server.Shutdown();
  std::error_code ec;
  fs::remove_all(scratch_dir, ec);
  return report;
}

}  // namespace testing
}  // namespace drli
