// Seeded invariant fuzzer. One seed deterministically derives an
// adversarial dataset (distribution, dimension d in [2, 5], tiny to
// medium n, grid-snapped coordinates, exact duplicates, coplanar rows,
// constant attributes), then drives three oracles over it:
//
//  1. CheckIndex on fresh DL and DL+ builds (structural invariants);
//  2. the differential harness across every index family, with
//     degenerate queries (k = 0, k = n, k > n) and tied weights mixed
//     into the sampled ones;
//  3. optionally the dynamic engines -- the flat-rebuild policy and
//     the tiered LSM engine with rng-derived memtable/fanout knobs --
//     under interleaved insert / delete / query / seal / compact-step
//     traces, compared against a brute-force mirror of the live set,
//     with a budgeted probe at a random cut point on every query and a
//     save/load roundtrip of the live multi-run state at the end.
//
// Everything is derived from the case seed, so any failure replays
// with `drli_fuzz --replay=<seed>`.

#ifndef DRLI_TESTING_FUZZ_H_
#define DRLI_TESTING_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/point.h"

namespace drli {

struct FuzzOptions {
  // Also exercise DynamicDualLayerIndex with interleaved updates.
  bool dynamic = true;
  // Run CheckIndex on DL / DL+ builds of the dataset.
  bool check_structure = true;
  // Randomized queries per case, on top of the fixed degenerate ones.
  std::size_t queries_per_case = 4;
  // Upper bound on the generated dataset size.
  std::size_t max_n = 160;
  // Randomized execution-budget cut points per case: each one re-runs
  // a sampled query across every family with max_evals (and a cancel
  // fuse) tripping mid-traversal, asserting certified-prefix
  // correctness. 0 disables budget faults.
  std::size_t budget_cut_points = 3;
  // Save the live tiered state (memtable, runs, tombstones) at the end
  // of the dynamic trace and verify the loaded copy answers
  // identically. Costs a little file IO per case.
  bool tiered_roundtrip = true;
  // Drive the scenario oracle (constrained / diversified / reverse
  // top-k vs. their brute-force references) over the case dataset, and
  // mix constrained + diversified probes into the mixed-rw trace.
  bool scenarios = true;
};

struct FuzzCaseResult {
  std::uint64_t seed = 0;
  std::size_t n = 0;
  std::size_t d = 0;
  std::string dataset_desc;
  std::vector<std::string> failures;

  // Dynamic-oracle trace telemetry (tiered engine), used to pick
  // corpus seeds that actually exercise multi-run shapes.
  std::size_t max_runs = 0;
  std::size_t mid_compaction_queries = 0;
  std::size_t peak_tombstones = 0;

  bool ok() const { return failures.empty(); }
};

// The deterministic dataset for `seed` (exposed for replay tooling);
// `desc` (optional) receives a short human-readable shape summary.
PointSet MakeFuzzDataset(std::uint64_t seed, const FuzzOptions& options,
                         std::string* desc);

// Runs the full case for `seed`. Never throws; failures are collected
// as human-readable lines prefixed with the oracle that found them.
FuzzCaseResult RunFuzzCase(std::uint64_t seed, const FuzzOptions& options = {});

// Sustained serving-shaped trace (~95% reads / ~5% writes) against the
// tiered dynamic engine and the brute-force mirror: seals and
// compactions happen under the read stream, every answer is checked,
// and a fraction of reads carry a random execution budget. The
// entry point for `drli_fuzz --mixed-rw` and the nightly
// sanitizer soak.
FuzzCaseResult RunMixedTraceCase(std::uint64_t seed,
                                 const FuzzOptions& options = {});

}  // namespace drli

#endif  // DRLI_TESTING_FUZZ_H_
