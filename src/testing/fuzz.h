// Seeded invariant fuzzer. One seed deterministically derives an
// adversarial dataset (distribution, dimension d in [2, 5], tiny to
// medium n, grid-snapped coordinates, exact duplicates, coplanar rows,
// constant attributes), then drives three oracles over it:
//
//  1. CheckIndex on fresh DL and DL+ builds (structural invariants);
//  2. the differential harness across every index family, with
//     degenerate queries (k = 0, k = n, k > n) and tied weights mixed
//     into the sampled ones;
//  3. optionally a DynamicDualLayerIndex under interleaved insert /
//     delete / query / Compact, compared against a brute-force mirror
//     of the live set.
//
// Everything is derived from the case seed, so any failure replays
// with `drli_fuzz --replay=<seed>`.

#ifndef DRLI_TESTING_FUZZ_H_
#define DRLI_TESTING_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/point.h"

namespace drli {

struct FuzzOptions {
  // Also exercise DynamicDualLayerIndex with interleaved updates.
  bool dynamic = true;
  // Run CheckIndex on DL / DL+ builds of the dataset.
  bool check_structure = true;
  // Randomized queries per case, on top of the fixed degenerate ones.
  std::size_t queries_per_case = 4;
  // Upper bound on the generated dataset size.
  std::size_t max_n = 160;
  // Randomized execution-budget cut points per case: each one re-runs
  // a sampled query across every family with max_evals (and a cancel
  // fuse) tripping mid-traversal, asserting certified-prefix
  // correctness. 0 disables budget faults.
  std::size_t budget_cut_points = 3;
};

struct FuzzCaseResult {
  std::uint64_t seed = 0;
  std::size_t n = 0;
  std::size_t d = 0;
  std::string dataset_desc;
  std::vector<std::string> failures;

  bool ok() const { return failures.empty(); }
};

// The deterministic dataset for `seed` (exposed for replay tooling);
// `desc` (optional) receives a short human-readable shape summary.
PointSet MakeFuzzDataset(std::uint64_t seed, const FuzzOptions& options,
                         std::string* desc);

// Runs the full case for `seed`. Never throws; failures are collected
// as human-readable lines prefixed with the oracle that found them.
FuzzCaseResult RunFuzzCase(std::uint64_t seed, const FuzzOptions& options = {});

}  // namespace drli

#endif  // DRLI_TESTING_FUZZ_H_
