// Structural invariant checker for DualLayerIndex (the "drli check"
// oracle). CheckIndex revalidates a built or deserialized index against
// the paper's definitions using only public accessors, so it works on
// indexes that went through a save/load round trip:
//
//  * array shapes and CSR edge targets are in range;
//  * every ∀-edge steps one coarse layer down under strict dominance
//    (weak dominance for pseudo-tuple sources, Lemma 1), every ∃-edge
//    steps one fine sublayer down inside one coarse layer;
//  * coarse_in_degree / has_fine_in / initial_nodes match a recount
//    from the adjacency;
//  * coarse layers are exactly the iterated skyline (dominance-depth
//    recomputation, capped by CheckOptions::max_pair_work with a
//    sampled fallback), and adjacent-layer ∀-edges are complete;
//  * fine sublayers are convex: per sampled weight, sublayer minima are
//    non-decreasing in the fine index (so the first sublayer always
//    holds a group minimizer);
//  * each node's ∃-in-neighbour set is an existential dominance set of
//    the node (FacetIsEds), in real and in virtual space;
//  * the zero layer covers the first coarse layer, pseudo-tuple edges
//    weakly dominate their targets, and the 2-d weight-range table
//    agrees with brute force on sampled weights;
//  * LayerGroups() partitions the real tuples, and the stats fields a
//    deserialized index restores match the structure.

#ifndef DRLI_TESTING_CHECK_INDEX_H_
#define DRLI_TESTING_CHECK_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/dual_layer.h"

namespace drli {

struct CheckOptions {
  // Weight vectors sampled for the convexity / zero-layer checks.
  std::size_t weight_samples = 16;
  std::uint64_t seed = 12345;
  // Budget (in point-pair comparisons) for the exact layer
  // recomputation and the ∀-edge completeness check; above it the
  // checker falls back to randomized pair sampling.
  std::size_t max_pair_work = 4'000'000;
  // Stop collecting failure messages past this count.
  std::size_t max_failures = 32;
};

struct CheckReport {
  std::vector<std::string> failures;
  std::size_t invariants_checked = 0;

  bool ok() const { return failures.empty(); }
  // "OK (N invariants)" or the failure list, newline separated.
  std::string ToString() const;
};

CheckReport CheckIndex(const DualLayerIndex& index,
                       const CheckOptions& options = {});

}  // namespace drli

#endif  // DRLI_TESTING_CHECK_INDEX_H_
