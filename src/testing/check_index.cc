#include "testing/check_index.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <sstream>
#include <unordered_set>

#include "common/point.h"
#include "common/random.h"
#include "core/eds.h"

namespace drli {

namespace {

using NodeId = DualLayerIndex::NodeId;

// Collects failures with a cap so a systemically broken index does not
// produce megabytes of output; invariants_checked counts every named
// invariant the checker evaluated (pass or fail).
class Checker {
 public:
  Checker(const DualLayerIndex& index, const CheckOptions& options)
      : index_(index), options_(options) {}

  CheckReport Run();

 private:
  template <typename... Parts>
  void Fail(const Parts&... parts) {
    if (report_.failures.size() >= options_.max_failures) return;
    std::ostringstream out;
    (out << ... << parts);
    report_.failures.push_back(out.str());
  }
  void Checked() { ++report_.invariants_checked; }

  std::size_t n() const { return index_.points().size(); }
  std::size_t total() const { return index_.num_nodes(); }

  void CheckShapes();
  void CheckEdgeSoundness();
  void CheckDegreeRecounts();
  void CheckLayerMembership();
  void CheckCoarseLayers();
  void CheckCoarseEdgeCompleteness();
  void CheckFineConvexity();
  void CheckEdsInSets();
  void CheckZeroLayer();
  void CheckWeightTable();
  void CheckLayerGroups();
  void CheckStats();

  // Real tuple ids bucketed by coarse layer (empty layers = failure,
  // reported by CheckCoarseLayers).
  std::vector<std::vector<TupleId>> RealLayers() const;

  const DualLayerIndex& index_;
  const CheckOptions& options_;
  CheckReport report_;
  bool shapes_ok_ = false;
};

std::vector<std::vector<TupleId>> Checker::RealLayers() const {
  std::uint32_t max_layer = 0;
  for (std::size_t id = 0; id < n(); ++id) {
    max_layer = std::max(max_layer, index_.coarse_layer_of(
                                        static_cast<NodeId>(id)));
  }
  std::vector<std::vector<TupleId>> layers(n() == 0 ? 0 : max_layer + 1);
  for (std::size_t id = 0; id < n(); ++id) {
    layers[index_.coarse_layer_of(static_cast<NodeId>(id))].push_back(
        static_cast<TupleId>(id));
  }
  return layers;
}

void Checker::CheckShapes() {
  Checked();
  shapes_ok_ = true;
  auto require_size = [&](const char* what, std::size_t got) {
    if (got != total()) {
      Fail(what, " has ", got, " entries, want num_nodes() = ", total());
      shapes_ok_ = false;
    }
  };
  require_size("coarse_out", index_.coarse_out().num_nodes());
  require_size("fine_out", index_.fine_out().num_nodes());
  require_size("coarse_in_degree", index_.coarse_in_degree().size());
  require_size("has_fine_in", index_.has_fine_in().size());
  for (std::size_t node = 0; shapes_ok_ && node < total(); ++node) {
    if (index_.fine_layer_of(static_cast<NodeId>(node)) ==
        DualLayerIndex::kNoFineLayer) {
      Fail("node ", node, " has no fine sublayer assignment");
      shapes_ok_ = false;
    }
  }

  Checked();
  auto check_targets = [&](const char* what, const CsrGraph& graph) {
    for (NodeId target : graph.targets()) {
      if (target >= total()) {
        Fail(what, " edge target ", target, " out of range [0, ", total(),
             ")");
        shapes_ok_ = false;
        return;
      }
    }
  };
  check_targets("coarse", index_.coarse_out());
  check_targets("fine", index_.fine_out());
}

void Checker::CheckEdgeSoundness() {
  Checked();
  for (std::size_t u = 0; u < total(); ++u) {
    const NodeId source = static_cast<NodeId>(u);
    const PointView sp = index_.node_point(source);
    for (NodeId v : index_.coarse_out()[source]) {
      if (index_.is_virtual(v)) {
        Fail("coarse edge ", u, " -> ", v, " targets a pseudo-tuple");
        continue;
      }
      const PointView tp = index_.node_point(v);
      if (index_.is_virtual(source)) {
        // Zero-layer ∀-edge: pseudo-tuple weakly dominates a tuple of
        // the first coarse layer.
        if (!WeaklyDominates(sp, tp)) {
          Fail("zero-layer edge ", u, " -> ", v,
               " source does not weakly dominate target");
        }
        if (index_.coarse_layer_of(v) != 0) {
          Fail("zero-layer edge ", u, " -> ", v, " target in coarse layer ",
               index_.coarse_layer_of(v), ", want 0");
        }
      } else {
        // Lemma 1 ∀-edge: strict dominance, one coarse layer down.
        if (!Dominates(sp, tp)) {
          Fail("coarse edge ", u, " -> ", v,
               " source does not dominate target");
        }
        if (index_.coarse_layer_of(v) != index_.coarse_layer_of(source) + 1) {
          Fail("coarse edge ", u, " -> ", v, " steps from layer ",
               index_.coarse_layer_of(source), " to ",
               index_.coarse_layer_of(v), ", want one layer down");
        }
      }
    }
  }

  Checked();
  for (std::size_t u = 0; u < total(); ++u) {
    const NodeId source = static_cast<NodeId>(u);
    for (NodeId v : index_.fine_out()[source]) {
      if (index_.is_virtual(source) != index_.is_virtual(v)) {
        Fail("fine edge ", u, " -> ", v, " crosses real/virtual spaces");
        continue;
      }
      if (index_.coarse_layer_of(source) != index_.coarse_layer_of(v)) {
        Fail("fine edge ", u, " -> ", v, " crosses coarse layers ",
             index_.coarse_layer_of(source), " -> ",
             index_.coarse_layer_of(v));
      }
      if (index_.fine_layer_of(v) != index_.fine_layer_of(source) + 1) {
        Fail("fine edge ", u, " -> ", v, " steps from fine sublayer ",
             index_.fine_layer_of(source), " to ", index_.fine_layer_of(v),
             ", want one sublayer down");
      }
    }
  }
}

void Checker::CheckDegreeRecounts() {
  Checked();
  std::vector<std::uint32_t> in_degree(total(), 0);
  std::vector<std::uint8_t> fine_in(total(), 0);
  for (NodeId target : index_.coarse_out().targets()) ++in_degree[target];
  for (NodeId target : index_.fine_out().targets()) fine_in[target] = 1;
  for (std::size_t node = 0; node < total(); ++node) {
    if (in_degree[node] != index_.coarse_in_degree()[node]) {
      Fail("coarse_in_degree[", node, "] = ",
           index_.coarse_in_degree()[node], ", recount says ",
           in_degree[node]);
    }
    if (fine_in[node] != index_.has_fine_in()[node]) {
      Fail("has_fine_in[", node, "] = ",
           static_cast<int>(index_.has_fine_in()[node]), ", recount says ",
           static_cast<int>(fine_in[node]));
    }
  }

  Checked();
  std::vector<NodeId> initial;
  for (std::size_t node = 0; node < total(); ++node) {
    if (in_degree[node] == 0 && fine_in[node] == 0) {
      initial.push_back(static_cast<NodeId>(node));
    }
  }
  if (initial != index_.initial_nodes()) {
    Fail("initial_nodes has ", index_.initial_nodes().size(),
         " entries, recount (in-degree 0, no fine in-edge) finds ",
         initial.size(), " or differs in membership/order");
  }
}

void Checker::CheckLayerMembership() {
  Checked();
  // The stored coarse layer lists must partition the real tuples and
  // agree with coarse_layer_of -- the audit the snapshot loader applies
  // to untrusted files, repeated here so live indexes are covered too.
  const std::vector<std::vector<TupleId>>& layers = index_.coarse_layers();
  std::vector<std::uint8_t> seen(n(), 0);
  std::size_t members = 0;
  for (std::size_t l = 0; l < layers.size(); ++l) {
    for (TupleId id : layers[l]) {
      if (id >= n()) {
        Fail("coarse_layers[", l, "] lists out-of-range id ", id);
        return;
      }
      if (seen[id]) {
        Fail("tuple ", id, " is listed in two coarse layers");
        return;
      }
      seen[id] = 1;
      ++members;
      if (index_.coarse_layer_of(static_cast<NodeId>(id)) != l) {
        Fail("coarse_layers[", l, "] lists tuple ", id,
             " but coarse_layer_of says ",
             index_.coarse_layer_of(static_cast<NodeId>(id)));
      }
    }
  }
  if (members != n()) {
    Fail("coarse_layers list ", members, " of ", n(), " tuples");
  }
}

void Checker::CheckCoarseLayers() {
  Checked();
  const std::vector<std::vector<TupleId>> layers = RealLayers();
  for (std::size_t l = 0; l < layers.size(); ++l) {
    if (layers[l].empty()) {
      Fail("coarse layer ", l, " is empty but deeper layers exist");
    }
  }

  Checked();
  const std::size_t pair_work = n() < 2 ? 0 : n() * (n() - 1) / 2;
  Rng rng(options_.seed);
  if (pair_work <= options_.max_pair_work) {
    // Exact dominance-depth recomputation: a tuple's iterated-skyline
    // layer equals the length of the longest strict-dominance chain
    // ending at it. Strict dominance lowers the coordinate sum, so a
    // single pass in sum order sees every dominator first.
    std::vector<TupleId> order(n());
    std::iota(order.begin(), order.end(), 0);
    std::vector<double> sum(n(), 0.0);
    for (std::size_t id = 0; id < n(); ++id) {
      const PointView p = index_.points()[id];
      for (std::size_t a = 0; a < p.size(); ++a) sum[id] += p[a];
    }
    std::sort(order.begin(), order.end(),
              [&](TupleId a, TupleId b) { return sum[a] < sum[b]; });
    std::vector<std::uint32_t> depth(n(), 0);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const PointView pi = index_.points()[order[i]];
      for (std::size_t j = 0; j < i; ++j) {
        if (depth[order[j]] + 1 > depth[order[i]] &&
            Dominates(index_.points()[order[j]], pi)) {
          depth[order[i]] = depth[order[j]] + 1;
        }
      }
    }
    for (std::size_t id = 0; id < n(); ++id) {
      if (depth[id] != index_.coarse_layer_of(static_cast<NodeId>(id))) {
        Fail("tuple ", id, " in coarse layer ",
             index_.coarse_layer_of(static_cast<NodeId>(id)),
             ", dominance depth says ", depth[id]);
      }
    }
  } else {
    // Sampled fallback: dominance implies a strictly deeper layer, and
    // tuples sharing a layer are mutually non-dominating.
    for (std::size_t s = 0; s < options_.max_pair_work / 8; ++s) {
      const TupleId a = static_cast<TupleId>(rng.Index(n()));
      const TupleId b = static_cast<TupleId>(rng.Index(n()));
      if (a == b) continue;
      const std::uint32_t la = index_.coarse_layer_of(a);
      const std::uint32_t lb = index_.coarse_layer_of(b);
      if (Dominates(index_.points()[a], index_.points()[b]) && la >= lb) {
        Fail("tuple ", a, " (layer ", la, ") dominates tuple ", b,
             " (layer ", lb, ") without being in a shallower layer");
      }
      if (la == lb && Dominates(index_.points()[b], index_.points()[a])) {
        Fail("coarse layer ", la, " holds dominating pair ", b, " -> ", a);
      }
    }
  }
}

void Checker::CheckCoarseEdgeCompleteness() {
  Checked();
  // Every real tuple below layer 0 needs at least one ∀-in-edge (its
  // skyline-layer witness); traversal order depends on it.
  for (std::size_t id = 0; id < n(); ++id) {
    const NodeId node = static_cast<NodeId>(id);
    if (index_.coarse_layer_of(node) > 0 &&
        index_.coarse_in_degree()[node] == 0) {
      Fail("tuple ", id, " in coarse layer ", index_.coarse_layer_of(node),
           " has no coarse in-edge");
    }
  }

  Checked();
  const std::vector<std::vector<TupleId>> layers = RealLayers();
  std::size_t pair_work = 0;
  for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
    pair_work += layers[l].size() * layers[l + 1].size();
  }
  if (pair_work > options_.max_pair_work) return;  // covered by sampling above
  std::unordered_set<std::uint64_t> edges;
  for (std::size_t u = 0; u < n(); ++u) {
    for (NodeId v : index_.coarse_out()[static_cast<NodeId>(u)]) {
      edges.insert((static_cast<std::uint64_t>(u) << 32) | v);
    }
  }
  for (std::size_t l = 0; l + 1 < layers.size(); ++l) {
    for (TupleId u : layers[l]) {
      for (TupleId v : layers[l + 1]) {
        if (!Dominates(index_.points()[u], index_.points()[v])) continue;
        if (!edges.count((static_cast<std::uint64_t>(u) << 32) | v)) {
          Fail("missing Lemma-1 edge ", u, " -> ", v,
               " between adjacent coarse layers ", l, " and ", l + 1);
        }
      }
    }
  }
}

void Checker::CheckFineConvexity() {
  Checked();
  // Group nodes by (space, coarse layer); inside a group, fine
  // sublayers are iterated convex skylines, so for every weight vector
  // the per-sublayer minimum is non-decreasing in the fine index (the
  // first sublayer always holds a group minimizer).
  struct Group {
    std::vector<NodeId> members;
    std::uint32_t max_fine = 0;
  };
  std::vector<Group> real_groups(RealLayers().size());
  Group virtual_group;
  for (std::size_t node = 0; node < total(); ++node) {
    const NodeId id = static_cast<NodeId>(node);
    Group& group = index_.is_virtual(id)
                       ? virtual_group
                       : real_groups[index_.coarse_layer_of(id)];
    group.members.push_back(id);
    group.max_fine = std::max(group.max_fine, index_.fine_layer_of(id));
  }

  auto check_group = [&](const Group& group, const char* what,
                         std::size_t coarse) {
    std::vector<std::uint8_t> populated(group.max_fine + 1, 0);
    for (NodeId id : group.members) populated[index_.fine_layer_of(id)] = 1;
    for (std::size_t f = 0; f <= group.max_fine; ++f) {
      if (!populated[f]) {
        Fail(what, " coarse layer ", coarse, " skips fine sublayer ", f);
        return;
      }
    }
    Rng rng(options_.seed);
    const std::size_t dim = index_.points().dim();
    for (std::size_t s = 0; s < options_.weight_samples; ++s) {
      const std::vector<double> w = rng.SimplexWeight(dim);
      const PointView wv(w);
      std::vector<double> sub_min(group.max_fine + 1,
                                  std::numeric_limits<double>::infinity());
      for (NodeId id : group.members) {
        const double score = Score(wv, index_.node_point(id));
        double& slot = sub_min[index_.fine_layer_of(id)];
        slot = std::min(slot, score);
      }
      for (std::size_t f = 0; f + 1 <= group.max_fine; ++f) {
        if (sub_min[f] > sub_min[f + 1] + 1e-9) {
          Fail(what, " coarse layer ", coarse, " fine sublayer ", f + 1,
               " beats sublayer ", f, " under a sampled weight (",
               sub_min[f + 1], " < ", sub_min[f],
               "): sublayers are not convex");
          return;
        }
      }
    }
  };
  for (std::size_t l = 0; l < real_groups.size(); ++l) {
    check_group(real_groups[l], "real", l);
  }
  if (!virtual_group.members.empty()) {
    check_group(virtual_group, "virtual", 0);
  }
}

void Checker::CheckEdsInSets() {
  Checked();
  // A node's ∃-in-neighbour set must be an existential dominance set of
  // the node (Lemma 2 then guarantees a cheaper in-neighbour under
  // every weight). Edges are validated in the space they live in;
  // virtual nodes index into virtual_points() locally.
  std::vector<std::vector<NodeId>> fine_in(total());
  for (std::size_t u = 0; u < total(); ++u) {
    for (NodeId v : index_.fine_out()[static_cast<NodeId>(u)]) {
      fine_in[v].push_back(static_cast<NodeId>(u));
    }
  }
  for (std::size_t v = 0; v < total(); ++v) {
    if (fine_in[v].empty()) continue;
    const NodeId node = static_cast<NodeId>(v);
    std::vector<TupleId> facet;
    facet.reserve(fine_in[v].size());
    if (index_.is_virtual(node)) {
      for (NodeId u : fine_in[v]) {
        facet.push_back(static_cast<TupleId>(u - n()));
      }
      if (!FacetIsEds(index_.virtual_points(), facet,
                      index_.virtual_points()[v - n()])) {
        Fail("virtual node ", v,
             " fine in-neighbours are not an EDS of the node");
      }
    } else {
      facet.assign(fine_in[v].begin(), fine_in[v].end());
      if (!FacetIsEds(index_.points(), facet, index_.points()[v])) {
        Fail("tuple ", v, " fine in-neighbours are not an EDS of the tuple");
      }
    }
  }
}

void Checker::CheckZeroLayer() {
  const std::size_t v = index_.virtual_points().size();
  if (index_.uses_weight_table() && v > 0) {
    Fail("index carries both zero-layer forms (weight table and ", v,
         " pseudo-tuples)");
  }
  if (v == 0) return;

  Checked();
  // Every pseudo-tuple must precede something (it exists to cover its
  // cluster), and the whole first coarse layer must be covered so no
  // first-layer tuple is an initial node when L0 is present.
  for (std::size_t i = 0; i < v; ++i) {
    const NodeId node = static_cast<NodeId>(n() + i);
    if (index_.coarse_out()[node].empty()) {
      Fail("pseudo-tuple ", i, " has no outgoing zero-layer edge");
    }
  }
  for (std::size_t id = 0; id < n(); ++id) {
    const NodeId node = static_cast<NodeId>(id);
    if (index_.coarse_layer_of(node) == 0 &&
        index_.coarse_in_degree()[node] == 0) {
      Fail("first-layer tuple ", id, " is not covered by the zero layer");
    }
  }
}

void Checker::CheckWeightTable() {
  if (!index_.uses_weight_table()) return;
  Checked();
  const WeightRangeTable& table = index_.weight_table();
  if (index_.points().dim() != 2) {
    Fail("weight-range table on a ", index_.points().dim(), "-d index");
    return;
  }
  std::unordered_set<TupleId> seen;
  for (TupleId id : table.chain()) {
    if (id >= n()) {
      Fail("weight-table chain id ", id, " out of range");
      return;
    }
    if (!seen.insert(id).second) {
      Fail("weight-table chain repeats tuple ", id);
    }
    const NodeId node = static_cast<NodeId>(id);
    if (index_.coarse_layer_of(node) != 0 || index_.fine_layer_of(node) != 0) {
      Fail("weight-table chain tuple ", id, " is in sublayer (",
           index_.coarse_layer_of(node), ", ", index_.fine_layer_of(node),
           "), want (0, 0)");
    }
  }
  for (std::size_t i = 0; i + 1 < table.chain().size(); ++i) {
    const PointView a = index_.points()[table.chain()[i]];
    const PointView b = index_.points()[table.chain()[i + 1]];
    if (!(a[0] < b[0] && a[1] > b[1])) {
      Fail("weight-table chain positions ", i, " and ", i + 1,
           " do not descend left to right");
    }
  }
  if (!table.chain().empty() &&
      table.breakpoints().size() + 1 != table.chain().size()) {
    Fail("weight table has ", table.breakpoints().size(),
         " breakpoints for a chain of ", table.chain().size());
  }
  for (std::size_t i = 0; i + 1 < table.breakpoints().size(); ++i) {
    if (!(table.breakpoints()[i] > table.breakpoints()[i + 1])) {
      Fail("weight-table breakpoints not strictly decreasing at ", i);
    }
  }

  Checked();
  if (table.empty()) return;
  Rng rng(options_.seed);
  for (std::size_t s = 0; s < options_.weight_samples; ++s) {
    const double w1 = rng.Uniform(1e-6, 1.0 - 1e-6);
    const double w[2] = {w1, 1.0 - w1};
    const PointView wv(w, 2);
    const std::size_t pos = table.Lookup(w1);
    if (pos >= table.chain().size()) {
      Fail("Lookup(", w1, ") returned position ", pos, " past the chain");
      return;
    }
    const double got = Score(wv, index_.points()[table.chain()[pos]]);
    double want = std::numeric_limits<double>::infinity();
    for (TupleId id : table.chain()) {
      want = std::min(want, Score(wv, index_.points()[id]));
    }
    if (got > want + 1e-9) {
      Fail("Lookup(", w1, ") picks a chain tuple scoring ", got,
           ", brute force over the chain finds ", want);
    }
  }
}

void Checker::CheckLayerGroups() {
  Checked();
  const std::vector<std::vector<TupleId>> groups = index_.LayerGroups();
  std::vector<std::uint8_t> covered(n(), 0);
  for (const std::vector<TupleId>& group : groups) {
    if (group.empty()) {
      Fail("LayerGroups returned an empty group");
      continue;
    }
    const NodeId first = static_cast<NodeId>(group.front());
    for (TupleId id : group) {
      if (id >= n()) {
        Fail("LayerGroups lists pseudo-tuple id ", id);
        continue;
      }
      if (covered[id]) {
        Fail("tuple ", id, " appears in two layer groups");
      }
      covered[id] = 1;
      const NodeId node = static_cast<NodeId>(id);
      if (index_.coarse_layer_of(node) != index_.coarse_layer_of(first) ||
          index_.fine_layer_of(node) != index_.fine_layer_of(first)) {
        Fail("layer group mixes sublayers: tuples ", group.front(), " and ",
             id);
      }
    }
  }
  for (std::size_t id = 0; id < n(); ++id) {
    if (!covered[id]) {
      Fail("tuple ", id, " is missing from LayerGroups");
      break;
    }
  }
}

void Checker::CheckStats() {
  Checked();
  // Only the fields a deserialized index restores are structural; the
  // rest are build-time observability and legitimately zero after a
  // load round trip.
  const std::vector<std::vector<TupleId>> layers = RealLayers();
  if (index_.build_stats().num_coarse_layers != layers.size()) {
    Fail("stats.num_coarse_layers = ", index_.build_stats().num_coarse_layers,
         ", structure has ", layers.size());
  }
  if (index_.build_stats().num_virtual != index_.virtual_points().size()) {
    Fail("stats.num_virtual = ", index_.build_stats().num_virtual,
         ", structure has ", index_.virtual_points().size());
  }
}

CheckReport Checker::Run() {
  if (index_.points().dim() != index_.virtual_points().dim()) {
    Fail("real and virtual point sets disagree on dimension");
    return std::move(report_);
  }
  CheckShapes();
  if (!shapes_ok_) return std::move(report_);  // later checks would index OOB
  CheckEdgeSoundness();
  CheckDegreeRecounts();
  CheckLayerMembership();
  CheckCoarseLayers();
  CheckCoarseEdgeCompleteness();
  CheckFineConvexity();
  CheckEdsInSets();
  CheckZeroLayer();
  CheckWeightTable();
  CheckLayerGroups();
  CheckStats();
  return std::move(report_);
}

}  // namespace

std::string CheckReport::ToString() const {
  if (ok()) {
    std::ostringstream out;
    out << "OK (" << invariants_checked << " invariants)";
    return out.str();
  }
  std::ostringstream out;
  out << failures.size() << " invariant violation(s):";
  for (const std::string& failure : failures) out << "\n  " << failure;
  return out.str();
}

CheckReport CheckIndex(const DualLayerIndex& index,
                       const CheckOptions& options) {
  return Checker(index, options).Run();
}

}  // namespace drli
