#include "testing/fuzz.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <vector>

#include "common/random.h"
#include "core/dual_layer.h"
#include "core/dynamic_index.h"
#include "data/generator.h"
#include "testing/check_index.h"
#include "testing/differential.h"
#include "topk/query.h"

namespace drli {

namespace {

void SnapToGrid(PointSet* points, std::size_t levels) {
  for (std::size_t i = 0; i < points->size(); ++i) {
    for (std::size_t a = 0; a < points->dim(); ++a) {
      const double snapped =
          std::round(points->At(i, a) * static_cast<double>(levels)) /
          static_cast<double>(levels);
      points->Set(i, a, snapped);
    }
  }
}

// Brute-force top-k over an id -> point map under the canonical order;
// the mirror oracle for the dynamic index.
std::vector<ScoredTuple> MirrorTopK(const std::map<TupleId, Point>& live,
                                    const std::vector<double>& weights,
                                    std::size_t k) {
  std::vector<ScoredTuple> all;
  all.reserve(live.size());
  const PointView w(weights);
  for (const auto& [id, point] : live) {
    all.push_back(ScoredTuple{id, Score(w, PointView(point))});
  }
  std::sort(all.begin(), all.end(), ResultOrderLess);
  all.resize(std::min(k, all.size()));
  return all;
}

void CompareToMirror(const TopKResult& got,
                     const std::vector<ScoredTuple>& want,
                     const char* when, std::size_t step,
                     std::vector<std::string>* failures) {
  if (got.items.size() != want.size()) {
    std::ostringstream out;
    out << "[dynamic] " << when << " step " << step << ": got "
        << got.items.size() << " items, mirror has " << want.size();
    failures->push_back(out.str());
    return;
  }
  for (std::size_t rank = 0; rank < want.size(); ++rank) {
    if (got.items[rank].id == want[rank].id &&
        got.items[rank].score == want[rank].score) {
      continue;
    }
    std::ostringstream out;
    out << "[dynamic] " << when << " step " << step << ": rank " << rank
        << " is (id " << got.items[rank].id << ", score "
        << got.items[rank].score << "), mirror says (id " << want[rank].id
        << ", score " << want[rank].score << ")";
    failures->push_back(out.str());
    return;
  }
}

// Budgeted probe for the dynamic index: the certified prefix must be a
// correct prefix of the mirror's exact answer.
void CheckDynamicPartial(const TopKResult& got,
                         const std::vector<ScoredTuple>& want,
                         std::size_t step,
                         std::vector<std::string>* failures) {
  std::ostringstream out;
  out << "[dynamic] budgeted query step " << step << ": ";
  if (got.termination == Termination::kInvalidQuery ||
      got.termination == Termination::kError) {
    out << "valid query rejected with " << TerminationName(got.termination)
        << ": " << got.error;
    failures->push_back(out.str());
    return;
  }
  const std::size_t certified = got.certified_prefix;
  if (certified > got.items.size() || certified > want.size()) {
    out << "certified prefix " << certified << " exceeds items ("
        << got.items.size() << ") or the mirror answer (" << want.size()
        << ")";
    failures->push_back(out.str());
    return;
  }
  for (std::size_t rank = 0; rank < certified; ++rank) {
    if (got.items[rank].id == want[rank].id &&
        got.items[rank].score == want[rank].score) {
      continue;
    }
    out << "certified rank " << rank << " is (id " << got.items[rank].id
        << ", score " << got.items[rank].score << "), mirror says (id "
        << want[rank].id << ", score " << want[rank].score << ")";
    failures->push_back(out.str());
    return;
  }
}

void RunDynamicOracle(std::uint64_t seed, const PointSet& dataset,
                      std::vector<std::string>* failures) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const std::size_t d = dataset.dim();

  // Start from a prefix of the dataset; its rows get base ids 0..m-1.
  const std::size_t prefix = dataset.size() / 2;
  PointSet initial(d);
  for (std::size_t i = 0; i < prefix; ++i) initial.Add(dataset[i]);
  DynamicDualLayerIndex dynamic(std::move(initial));
  std::map<TupleId, Point> live;
  std::vector<TupleId> live_ids;
  for (std::size_t i = 0; i < prefix; ++i) {
    live.emplace(static_cast<TupleId>(i), dataset.Materialize(i));
    live_ids.push_back(static_cast<TupleId>(i));
  }

  std::size_t next_row = prefix;  // dataset rows not yet inserted
  const std::size_t steps = 2 * std::min<std::size_t>(dataset.size(), 40) + 12;
  for (std::size_t step = 0; step < steps; ++step) {
    const std::size_t op = rng.Index(4);
    if (op <= 1) {
      // Insert: remaining dataset rows first (they carry the
      // adversarial structure), then fresh random points.
      Point point;
      if (next_row < dataset.size()) {
        point = dataset.Materialize(next_row++);
      } else {
        point.reserve(d);
        for (std::size_t a = 0; a < d; ++a) point.push_back(rng.Uniform());
      }
      const TupleId id = dynamic.Insert(PointView(point));
      if (live.count(id)) {
        std::ostringstream out;
        out << "[dynamic] step " << step << ": Insert reused live id " << id;
        failures->push_back(out.str());
        return;
      }
      live.emplace(id, std::move(point));
      live_ids.push_back(id);
    } else if (op == 2 && !live_ids.empty()) {
      const std::size_t pick = rng.Index(live_ids.size());
      const TupleId id = live_ids[pick];
      live_ids[pick] = live_ids.back();
      live_ids.pop_back();
      if (!dynamic.Erase(id) || dynamic.Contains(id)) {
        std::ostringstream out;
        out << "[dynamic] step " << step << ": Erase(" << id
            << ") failed or left the id live";
        failures->push_back(out.str());
        return;
      }
      live.erase(id);
      if (dynamic.Erase(id)) {
        std::ostringstream out;
        out << "[dynamic] step " << step << ": double Erase(" << id
            << ") claimed success";
        failures->push_back(out.str());
        return;
      }
    } else {
      TopKQuery query;
      query.k = rng.Index(live.size() + 3);  // covers k = 0 and k > n
      query.weights = rng.SimplexWeight(d);
      const std::vector<ScoredTuple> want =
          MirrorTopK(live, query.weights, query.k);
      CompareToMirror(dynamic.Query(query), want, "query", step, failures);
      if (!failures->empty()) return;
      if (!live.empty() && rng.Index(2) == 0) {
        TopKQuery budgeted = query;
        budgeted.budget.max_evals = 1 + rng.Index(live.size());
        CheckDynamicPartial(dynamic.Query(budgeted), want, step, failures);
        if (!failures->empty()) return;
      }
    }
    if (dynamic.size() != live.size()) {
      std::ostringstream out;
      out << "[dynamic] step " << step << ": size() = " << dynamic.size()
          << ", mirror has " << live.size();
      failures->push_back(out.str());
      return;
    }
  }

  // Compact must preserve ids, membership, and answers.
  dynamic.Compact();
  TopKQuery query;
  query.k = live.size() / 2 + 1;
  query.weights = rng.SimplexWeight(d);
  CompareToMirror(dynamic.Query(query),
                  MirrorTopK(live, query.weights, query.k), "post-compact",
                  steps, failures);
}

}  // namespace

PointSet MakeFuzzDataset(std::uint64_t seed, const FuzzOptions& options,
                         std::string* desc) {
  Rng rng(seed);
  const std::size_t d = 2 + rng.Index(4);
  std::size_t n = 0;
  switch (rng.Index(8)) {
    case 0: n = 0; break;
    case 1: n = 1; break;
    case 2: n = 2 + rng.Index(7); break;  // around typical k values
    default: n = 10 + rng.Index(options.max_n > 10 ? options.max_n - 10 : 1);
  }
  const Distribution dist = static_cast<Distribution>(rng.Index(3));
  PointSet points =
      Generate(dist, n, d, static_cast<std::uint64_t>(rng.Index(1u << 30)));

  std::ostringstream shape;
  shape << "d=" << d << " n=" << n << " " << DistributionName(dist);

  if (n > 0 && rng.Index(2) == 0) {
    const std::size_t levels = std::size_t{2} << rng.Index(4);  // 2..16
    SnapToGrid(&points, levels);
    shape << " grid=" << levels;
  }
  if (n >= 3 && rng.Index(4) == 0) {
    // Coplanar rows: force a fraction onto the hyperplane sum(x) = c,
    // which ties their scores under uniform weights.
    const double c = 0.4 + rng.Uniform(0.0, 0.4) * static_cast<double>(d - 1);
    const std::size_t count = 2 + rng.Index(points.size() - 1);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t row = rng.Index(points.size());
      double rest = 0.0;
      for (std::size_t a = 0; a + 1 < d; ++a) rest += points.At(row, a);
      points.Set(row, d - 1, std::clamp(c - rest, 0.0, 1.0));
    }
    shape << " coplanar=" << count;
  }
  if (rng.Index(4) == 0) {
    const std::size_t attr = rng.Index(d);
    const double value = rng.Uniform();
    for (std::size_t i = 0; i < points.size(); ++i) {
      points.Set(i, attr, value);
    }
    shape << " const-attr=" << attr;
  }
  if (n > 0 && rng.Index(2) == 0) {
    // Exact duplicates, appended so they share every coordinate.
    const std::size_t count = 1 + rng.Index(points.size() / 4 + 1);
    for (std::size_t i = 0; i < count; ++i) {
      const Point copy = points.Materialize(rng.Index(points.size()));
      points.Add(PointView(copy));
    }
    shape << " dup=" << count;
  }

  if (desc != nullptr) *desc = shape.str();
  return points;
}

FuzzCaseResult RunFuzzCase(std::uint64_t seed, const FuzzOptions& options) {
  FuzzCaseResult result;
  result.seed = seed;
  PointSet dataset = MakeFuzzDataset(seed, options, &result.dataset_desc);
  result.n = dataset.size();
  result.d = dataset.dim();
  Rng rng(seed + 0x6a09e667f3bcc909ULL);

  if (options.check_structure) {
    for (const bool zero_layer : {false, true}) {
      DualLayerOptions build;
      build.build_zero_layer = zero_layer;
      const DualLayerIndex index = DualLayerIndex::Build(dataset, build);
      CheckOptions check;
      check.seed = seed;
      const CheckReport report = CheckIndex(index, check);
      for (const std::string& failure : report.failures) {
        result.failures.push_back(std::string("[check ") +
                                  (zero_layer ? "dl+" : "dl") + "] " +
                                  failure);
      }
    }
  }

  StatusOr<DifferentialHarness> harness = DifferentialHarness::Build(dataset);
  if (!harness.ok()) {
    result.failures.push_back("[differential] harness build failed: " +
                              harness.status().ToString());
    return result;
  }
  std::vector<TopKQuery> queries;
  const std::size_t n = dataset.size();
  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, n, n + 3}) {
    TopKQuery query;
    query.k = k;
    query.weights = rng.SimplexWeight(dataset.dim());
    queries.push_back(std::move(query));
  }
  {
    // Uniform weights maximize score collisions on grid-snapped and
    // coplanar data.
    TopKQuery query;
    query.k = std::min<std::size_t>(3, n + 1);
    query.weights.assign(dataset.dim(),
                         1.0 / static_cast<double>(dataset.dim()));
    queries.push_back(std::move(query));
  }
  for (std::size_t i = 0; i < options.queries_per_case; ++i) {
    TopKQuery query;
    query.k = 1 + rng.Index(n + 2);
    query.weights = rng.SimplexWeight(dataset.dim());
    queries.push_back(std::move(query));
  }
  for (const TopKQuery& query : queries) {
    std::vector<std::string> failures = harness.value().CheckQuery(query);
    result.failures.insert(result.failures.end(), failures.begin(),
                           failures.end());
    if (!result.failures.empty()) return result;
  }

  if (options.budget_cut_points > 0 && n > 0) {
    // Budget faults: sample a query, find the most expensive family's
    // unbudgeted cost, and cut the traversal at random step indices
    // with both a step budget and a cancel fuse.
    TopKQuery base;
    base.k = 1 + rng.Index(n);
    base.weights = rng.SimplexWeight(dataset.dim());
    std::size_t max_cost = 0;
    for (const auto& [kind, cost] : harness.value().UnbudgetedCosts(base)) {
      max_cost = std::max(max_cost, cost);
    }
    for (std::size_t i = 0; max_cost > 0 && i < options.budget_cut_points;
         ++i) {
      TopKQuery budgeted = base;
      budgeted.budget.max_evals = 1 + rng.Index(max_cost);
      std::vector<std::string> failures =
          harness.value().CheckBudgetedQuery(budgeted);
      result.failures.insert(result.failures.end(), failures.begin(),
                             failures.end());
      if (!result.failures.empty()) return result;

      CancelToken token;
      token.CancelAfterChecks(
          static_cast<std::int64_t>(1 + rng.Index(max_cost)));
      TopKQuery cancelled = base;
      cancelled.budget.cancel = &token;
      failures = harness.value().CheckBudgetedQuery(cancelled);
      result.failures.insert(result.failures.end(), failures.begin(),
                             failures.end());
      if (!result.failures.empty()) return result;
    }
  }

  if (options.dynamic) {
    RunDynamicOracle(seed, dataset, &result.failures);
  }
  return result;
}

}  // namespace drli
