#include "testing/fuzz.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>
#include <vector>

#include "common/random.h"
#include "core/dual_layer.h"
#include "core/dynamic_index.h"
#include "core/tiered_index.h"
#include "data/generator.h"
#include "scenarios/constrained.h"
#include "scenarios/diversified.h"
#include "storage/tiered_io.h"
#include "testing/check_index.h"
#include "testing/differential.h"
#include "testing/scenario_oracle.h"
#include "topk/query.h"

namespace drli {

namespace {

void SnapToGrid(PointSet* points, std::size_t levels) {
  for (std::size_t i = 0; i < points->size(); ++i) {
    for (std::size_t a = 0; a < points->dim(); ++a) {
      const double snapped =
          std::round(points->At(i, a) * static_cast<double>(levels)) /
          static_cast<double>(levels);
      points->Set(i, a, snapped);
    }
  }
}

// Brute-force top-k over an id -> point map under the canonical order;
// the mirror oracle for the dynamic index.
std::vector<ScoredTuple> MirrorTopK(const std::map<TupleId, Point>& live,
                                    const std::vector<double>& weights,
                                    std::size_t k) {
  std::vector<ScoredTuple> all;
  all.reserve(live.size());
  const PointView w(weights);
  for (const auto& [id, point] : live) {
    all.push_back(ScoredTuple{id, Score(w, PointView(point))});
  }
  std::sort(all.begin(), all.end(), ResultOrderLess);
  all.resize(std::min(k, all.size()));
  return all;
}

void CompareToMirror(const TopKResult& got,
                     const std::vector<ScoredTuple>& want,
                     const char* when, std::size_t step,
                     std::vector<std::string>* failures) {
  if (got.items.size() != want.size()) {
    std::ostringstream out;
    out << "[dynamic] " << when << " step " << step << ": got "
        << got.items.size() << " items, mirror has " << want.size();
    failures->push_back(out.str());
    return;
  }
  for (std::size_t rank = 0; rank < want.size(); ++rank) {
    if (got.items[rank].id == want[rank].id &&
        got.items[rank].score == want[rank].score) {
      continue;
    }
    std::ostringstream out;
    out << "[dynamic] " << when << " step " << step << ": rank " << rank
        << " is (id " << got.items[rank].id << ", score "
        << got.items[rank].score << "), mirror says (id " << want[rank].id
        << ", score " << want[rank].score << ")";
    failures->push_back(out.str());
    return;
  }
}

// Budgeted probe for the dynamic index: the certified prefix must be a
// correct prefix of the mirror's exact answer.
void CheckDynamicPartial(const TopKResult& got,
                         const std::vector<ScoredTuple>& want,
                         std::size_t step,
                         std::vector<std::string>* failures) {
  std::ostringstream out;
  out << "[dynamic] budgeted query step " << step << ": ";
  if (got.termination == Termination::kInvalidQuery ||
      got.termination == Termination::kError) {
    out << "valid query rejected with " << TerminationName(got.termination)
        << ": " << got.error;
    failures->push_back(out.str());
    return;
  }
  const std::size_t certified = got.certified_prefix;
  if (certified > got.items.size() || certified > want.size()) {
    out << "certified prefix " << certified << " exceeds items ("
        << got.items.size() << ") or the mirror answer (" << want.size()
        << ")";
    failures->push_back(out.str());
    return;
  }
  for (std::size_t rank = 0; rank < certified; ++rank) {
    if (got.items[rank].id == want[rank].id &&
        got.items[rank].score == want[rank].score) {
      continue;
    }
    out << "certified rank " << rank << " is (id " << got.items[rank].id
        << ", score " << got.items[rank].score << "), mirror says (id "
        << want[rank].id << ", score " << want[rank].score << ")";
    failures->push_back(out.str());
    return;
  }
}

// Scenario probes for the mixed-rw trace: the constrained traversal
// over the live tiered index (runs + memtable + tombstones) against
// the reference scan over the live rows, and the diversified greedy
// against the same greedy over the compacted live set. `universe`
// holds every row ever inserted at its stable id (ids are never
// reused), so global pick ids index it even after erases.
void RunMixedScenarioProbes(const TieredDualLayerIndex& tiered,
                            const PointSet& universe,
                            const std::map<TupleId, Point>& live, Rng& rng,
                            std::size_t step,
                            std::vector<std::string>* failures) {
  if (live.empty()) return;
  const std::size_t d = universe.dim();
  std::vector<TupleId> ids;  // ascending (map iteration order)
  PointSet live_points(d);
  ids.reserve(live.size());
  for (const auto& [id, point] : live) {
    ids.push_back(id);
    live_points.Add(PointView(point));
  }

  {
    ConstrainedQuery query;
    query.weights = rng.SimplexWeight(d);
    query.k = 1 + rng.Index(live.size() + 2);
    const TupleId a = ids[rng.Index(ids.size())];
    const TupleId b = ids[rng.Index(ids.size())];
    query.box.lo.resize(d);
    query.box.hi.resize(d);
    for (std::size_t attr = 0; attr < d; ++attr) {
      query.box.lo[attr] =
          std::min(universe.At(a, attr), universe.At(b, attr));
      query.box.hi[attr] =
          std::max(universe.At(a, attr), universe.At(b, attr));
    }
    const TopKResult want = ConstrainedScanRows(live_points, ids, query);
    const TopKResult got = ConstrainedTopK(tiered, query);
    if (!got.complete()) {
      failures->push_back("[mixed] constrained step " + std::to_string(step) +
                          ": unbudgeted query did not complete: " + got.error);
      return;
    }
    if (got.items.size() != want.items.size()) {
      std::ostringstream out;
      out << "[mixed] constrained step " << step << ": got "
          << got.items.size() << " items, scan has " << want.items.size();
      failures->push_back(out.str());
      return;
    }
    for (std::size_t rank = 0; rank < want.items.size(); ++rank) {
      if (got.items[rank].id == want.items[rank].id &&
          got.items[rank].score == want.items[rank].score) {
        continue;
      }
      std::ostringstream out;
      out << "[mixed] constrained step " << step << ": rank " << rank
          << " is (id " << got.items[rank].id << ", score "
          << got.items[rank].score << "), scan says (id "
          << want.items[rank].id << ", score " << want.items[rank].score
          << ")";
      failures->push_back(out.str());
      return;
    }
  }

  if (rng.Index(2) == 0) {
    DiversifiedQuery query;
    query.weights = rng.SimplexWeight(d);
    query.k = 1 + rng.Index(4);
    query.lambda = rng.Uniform(0.0, 1.5);
    query.pool_factor = 2;
    const DiversifiedResult got = DiversifiedTopK(tiered, universe, query);
    // The greedy over the compacted live set with order-preserving id
    // relabeling makes the same selections: scores, similarities, and
    // the ascending-id tie-break are all invariant under the mapping.
    const DiversifiedResult want = DiversifiedTopKScan(live_points, query);
    if (!got.complete()) {
      failures->push_back("[mixed] diversified step " + std::to_string(step) +
                          ": unbudgeted query did not complete: " + got.error);
      return;
    }
    if (got.picks.size() != want.picks.size()) {
      std::ostringstream out;
      out << "[mixed] diversified step " << step << ": got "
          << got.picks.size() << " picks, scan has " << want.picks.size();
      failures->push_back(out.str());
      return;
    }
    for (std::size_t i = 0; i < want.picks.size(); ++i) {
      const TupleId want_id = ids[want.picks[i].id];
      if (got.picks[i].id == want_id &&
          got.picks[i].score == want.picks[i].score &&
          got.picks[i].utility == want.picks[i].utility) {
        continue;
      }
      std::ostringstream out;
      out << "[mixed] diversified step " << step << ": pick " << i
          << " is id " << got.picks[i].id << " (g=" << got.picks[i].utility
          << "), scan says id " << want_id << " (g=" << want.picks[i].utility
          << ")";
      failures->push_back(out.str());
      return;
    }
  }
}

// Drives the mirror, the flat-rebuild policy, and the tiered LSM
// engine through one interleaved insert / erase / query /
// maintenance-step trace. Both real indexes assign ids identically
// (monotone from the shared prefix), so every check runs against both.
void RunDynamicOracle(std::uint64_t seed, const PointSet& dataset,
                      const FuzzOptions& options, FuzzCaseResult* result) {
  std::vector<std::string>* failures = &result->failures;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const std::size_t d = dataset.dim();

  // Start from a prefix of the dataset; its rows get base ids 0..m-1.
  const std::size_t prefix = dataset.size() / 2;
  PointSet initial(d);
  for (std::size_t i = 0; i < prefix; ++i) initial.Add(dataset[i]);

  DynamicIndexOptions flat_options;
  flat_options.policy = MaintenancePolicy::kFlatRebuild;
  DynamicDualLayerIndex flat(initial, flat_options);

  // Tiny rng-derived maintenance knobs so short traces still span many
  // runs and live compactions; auto-compaction is itself fuzzed.
  TieredIndexOptions tiered_options;
  tiered_options.memtable_capacity = 4 + rng.Index(29);  // 4..32
  tiered_options.fanout = 2 + rng.Index(3);              // 2..4
  tiered_options.auto_compact = rng.Index(2) == 0;
  tiered_options.compact_rows_per_step = 1 + rng.Index(24);
  TieredDualLayerIndex tiered(std::move(initial), tiered_options);

  std::map<TupleId, Point> live;
  std::vector<TupleId> live_ids;
  for (std::size_t i = 0; i < prefix; ++i) {
    live.emplace(static_cast<TupleId>(i), dataset.Materialize(i));
    live_ids.push_back(static_cast<TupleId>(i));
  }

  const auto note_state = [&] {
    result->max_runs = std::max(result->max_runs, tiered.num_runs());
    result->peak_tombstones =
        std::max(result->peak_tombstones, tiered.tombstone_count());
  };

  std::size_t next_row = prefix;  // dataset rows not yet inserted
  const std::size_t steps = 3 * std::min<std::size_t>(dataset.size(), 40) + 16;
  for (std::size_t step = 0; step < steps; ++step) {
    const std::size_t op = rng.Index(8);
    if (op <= 2) {
      // Insert: remaining dataset rows first (they carry the
      // adversarial structure), then fresh random points.
      Point point;
      if (next_row < dataset.size()) {
        point = dataset.Materialize(next_row++);
      } else {
        point.reserve(d);
        for (std::size_t a = 0; a < d; ++a) point.push_back(rng.Uniform());
      }
      const TupleId id = flat.Insert(PointView(point));
      const TupleId tiered_id = tiered.Insert(PointView(point));
      if (id != tiered_id || live.count(id)) {
        std::ostringstream out;
        out << "[dynamic] step " << step << ": Insert ids diverged (flat "
            << id << ", tiered " << tiered_id << ") or reused a live id";
        failures->push_back(out.str());
        return;
      }
      live.emplace(id, std::move(point));
      live_ids.push_back(id);
    } else if (op <= 4 && !live_ids.empty()) {
      const std::size_t pick = rng.Index(live_ids.size());
      const TupleId id = live_ids[pick];
      live_ids[pick] = live_ids.back();
      live_ids.pop_back();
      if (!flat.Erase(id) || flat.Contains(id) || !tiered.Erase(id) ||
          tiered.Contains(id)) {
        std::ostringstream out;
        out << "[dynamic] step " << step << ": Erase(" << id
            << ") failed or left the id live";
        failures->push_back(out.str());
        return;
      }
      live.erase(id);
      if (flat.Erase(id) || tiered.Erase(id)) {
        std::ostringstream out;
        out << "[dynamic] step " << step << ": double Erase(" << id
            << ") claimed success";
        failures->push_back(out.str());
        return;
      }
    } else if (op <= 6) {
      TopKQuery query;
      query.k = rng.Index(live.size() + 3);  // covers k = 0 and k > n
      query.weights = rng.SimplexWeight(d);
      const std::vector<ScoredTuple> want =
          MirrorTopK(live, query.weights, query.k);
      if (tiered.compaction_active()) ++result->mid_compaction_queries;
      CompareToMirror(flat.Query(query), want, "flat query", step, failures);
      CompareToMirror(tiered.Query(query), want, "tiered query", step,
                      failures);
      if (!failures->empty()) return;
      if (!live.empty()) {
        // Budgeted probe on every query step: a random cut point must
        // still certify correctly against the multi-run frontier.
        TopKQuery budgeted = query;
        budgeted.budget.max_evals = 1 + rng.Index(live.size());
        CheckDynamicPartial(tiered.Query(budgeted), want, step, failures);
        if (!failures->empty()) return;
        if (rng.Index(2) == 0) {
          CheckDynamicPartial(flat.Query(budgeted), want, step, failures);
          if (!failures->empty()) return;
        }
      }
    } else {
      // Maintenance step: force a seal or advance compaction by one
      // increment; a query on the next iteration lands mid-job.
      if (rng.Index(2) == 0) {
        tiered.SealMemtable();
      } else {
        tiered.CompactStep();
      }
    }
    note_state();
    if (flat.size() != live.size() || tiered.size() != live.size()) {
      std::ostringstream out;
      out << "[dynamic] step " << step << ": flat size " << flat.size()
          << ", tiered size " << tiered.size() << ", mirror has "
          << live.size();
      failures->push_back(out.str());
      return;
    }
  }

  TopKQuery final_query;
  final_query.k = live.size() / 2 + 1;
  final_query.weights = rng.SimplexWeight(d);
  const std::vector<ScoredTuple> final_want =
      MirrorTopK(live, final_query.weights, final_query.k);

  if (options.tiered_roundtrip) {
    // Save / load roundtrip of the live tiered state (mid-memtable,
    // mid-tombstone, possibly mid-compaction-job -- the job is
    // transient and must not affect the persisted answer).
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("drli_fuzz_tiered_" + std::to_string(getpid()) + "_" +
          std::to_string(seed) + ".drlt"))
            .string();
    TieredSaveOptions save;
    std::vector<std::string> written;
    save.write_order = &written;
    const Status saved = SaveTieredIndex(tiered, path, save);
    if (!saved.ok()) {
      failures->push_back("[dynamic] tiered save failed: " +
                          saved.ToString());
      return;
    }
    StatusOr<TieredDualLayerIndex> loaded = LoadTieredIndex(path);
    if (!loaded.ok()) {
      failures->push_back("[dynamic] tiered load failed: " +
                          loaded.status().ToString());
    } else {
      if (loaded.value().size() != live.size() ||
          loaded.value().generation() != tiered.generation()) {
        failures->push_back(
            "[dynamic] tiered roundtrip changed size or generation");
      }
      CompareToMirror(loaded.value().Query(final_query), final_want,
                      "post-roundtrip", steps, failures);
    }
    for (const std::string& file : written) std::remove(file.c_str());
    if (!failures->empty()) return;
  }

  // Full compaction must preserve ids, membership, and answers on both
  // policies, and leave the tiered index in its canonical final shape.
  flat.Compact();
  tiered.Compact();
  CompareToMirror(flat.Query(final_query), final_want, "flat post-compact",
                  steps, failures);
  CompareToMirror(tiered.Query(final_query), final_want,
                  "tiered post-compact", steps, failures);
  if (!failures->empty()) return;
  if (tiered.num_runs() > 1 || tiered.tombstone_count() != 0 ||
      tiered.memtable_size() != 0 || tiered.compaction_active()) {
    std::ostringstream out;
    out << "[dynamic] full compaction left " << tiered.num_runs()
        << " runs, " << tiered.tombstone_count() << " tombstones, memtable "
        << tiered.memtable_size();
    failures->push_back(out.str());
  }
}

}  // namespace

PointSet MakeFuzzDataset(std::uint64_t seed, const FuzzOptions& options,
                         std::string* desc) {
  Rng rng(seed);
  const std::size_t d = 2 + rng.Index(4);
  std::size_t n = 0;
  switch (rng.Index(8)) {
    case 0: n = 0; break;
    case 1: n = 1; break;
    case 2: n = 2 + rng.Index(7); break;  // around typical k values
    default: n = 10 + rng.Index(options.max_n > 10 ? options.max_n - 10 : 1);
  }
  const Distribution dist = static_cast<Distribution>(rng.Index(3));
  PointSet points =
      Generate(dist, n, d, static_cast<std::uint64_t>(rng.Index(1u << 30)));

  std::ostringstream shape;
  shape << "d=" << d << " n=" << n << " " << DistributionName(dist);

  if (n > 0 && rng.Index(2) == 0) {
    const std::size_t levels = std::size_t{2} << rng.Index(4);  // 2..16
    SnapToGrid(&points, levels);
    shape << " grid=" << levels;
  }
  if (n >= 3 && rng.Index(4) == 0) {
    // Coplanar rows: force a fraction onto the hyperplane sum(x) = c,
    // which ties their scores under uniform weights.
    const double c = 0.4 + rng.Uniform(0.0, 0.4) * static_cast<double>(d - 1);
    const std::size_t count = 2 + rng.Index(points.size() - 1);
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t row = rng.Index(points.size());
      double rest = 0.0;
      for (std::size_t a = 0; a + 1 < d; ++a) rest += points.At(row, a);
      points.Set(row, d - 1, std::clamp(c - rest, 0.0, 1.0));
    }
    shape << " coplanar=" << count;
  }
  if (rng.Index(4) == 0) {
    const std::size_t attr = rng.Index(d);
    const double value = rng.Uniform();
    for (std::size_t i = 0; i < points.size(); ++i) {
      points.Set(i, attr, value);
    }
    shape << " const-attr=" << attr;
  }
  if (n > 0 && rng.Index(2) == 0) {
    // Exact duplicates, appended so they share every coordinate.
    const std::size_t count = 1 + rng.Index(points.size() / 4 + 1);
    for (std::size_t i = 0; i < count; ++i) {
      const Point copy = points.Materialize(rng.Index(points.size()));
      points.Add(PointView(copy));
    }
    shape << " dup=" << count;
  }

  if (desc != nullptr) *desc = shape.str();
  return points;
}

FuzzCaseResult RunFuzzCase(std::uint64_t seed, const FuzzOptions& options) {
  FuzzCaseResult result;
  result.seed = seed;
  PointSet dataset = MakeFuzzDataset(seed, options, &result.dataset_desc);
  result.n = dataset.size();
  result.d = dataset.dim();
  Rng rng(seed + 0x6a09e667f3bcc909ULL);

  if (options.check_structure) {
    for (const bool zero_layer : {false, true}) {
      DualLayerOptions build;
      build.build_zero_layer = zero_layer;
      const DualLayerIndex index = DualLayerIndex::Build(dataset, build);
      CheckOptions check;
      check.seed = seed;
      const CheckReport report = CheckIndex(index, check);
      for (const std::string& failure : report.failures) {
        result.failures.push_back(std::string("[check ") +
                                  (zero_layer ? "dl+" : "dl") + "] " +
                                  failure);
      }
    }
  }

  StatusOr<DifferentialHarness> harness = DifferentialHarness::Build(dataset);
  if (!harness.ok()) {
    result.failures.push_back("[differential] harness build failed: " +
                              harness.status().ToString());
    return result;
  }
  std::vector<TopKQuery> queries;
  const std::size_t n = dataset.size();
  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, n, n + 3}) {
    TopKQuery query;
    query.k = k;
    query.weights = rng.SimplexWeight(dataset.dim());
    queries.push_back(std::move(query));
  }
  {
    // Uniform weights maximize score collisions on grid-snapped and
    // coplanar data.
    TopKQuery query;
    query.k = std::min<std::size_t>(3, n + 1);
    query.weights.assign(dataset.dim(),
                         1.0 / static_cast<double>(dataset.dim()));
    queries.push_back(std::move(query));
  }
  for (std::size_t i = 0; i < options.queries_per_case; ++i) {
    TopKQuery query;
    query.k = 1 + rng.Index(n + 2);
    query.weights = rng.SimplexWeight(dataset.dim());
    queries.push_back(std::move(query));
  }
  for (const TopKQuery& query : queries) {
    std::vector<std::string> failures = harness.value().CheckQuery(query);
    result.failures.insert(result.failures.end(), failures.begin(),
                           failures.end());
    if (!result.failures.empty()) return result;
  }

  if (options.budget_cut_points > 0 && n > 0) {
    // Budget faults: sample a query, find the most expensive family's
    // unbudgeted cost, and cut the traversal at random step indices
    // with both a step budget and a cancel fuse.
    TopKQuery base;
    base.k = 1 + rng.Index(n);
    base.weights = rng.SimplexWeight(dataset.dim());
    std::size_t max_cost = 0;
    for (const auto& [kind, cost] : harness.value().UnbudgetedCosts(base)) {
      max_cost = std::max(max_cost, cost);
    }
    for (std::size_t i = 0; max_cost > 0 && i < options.budget_cut_points;
         ++i) {
      TopKQuery budgeted = base;
      budgeted.budget.max_evals = 1 + rng.Index(max_cost);
      std::vector<std::string> failures =
          harness.value().CheckBudgetedQuery(budgeted);
      result.failures.insert(result.failures.end(), failures.begin(),
                             failures.end());
      if (!result.failures.empty()) return result;

      CancelToken token;
      token.CancelAfterChecks(
          static_cast<std::int64_t>(1 + rng.Index(max_cost)));
      TopKQuery cancelled = base;
      cancelled.budget.cancel = &token;
      failures = harness.value().CheckBudgetedQuery(cancelled);
      result.failures.insert(result.failures.end(), failures.begin(),
                             failures.end());
      if (!result.failures.empty()) return result;
    }
  }

  if (options.scenarios) {
    for (const std::string& failure : CheckScenarioFamilies(dataset, seed)) {
      result.failures.push_back("[scenario] " + failure);
    }
    if (!result.failures.empty()) return result;
  }

  if (options.dynamic) {
    RunDynamicOracle(seed, dataset, options, &result);
  }
  return result;
}

FuzzCaseResult RunMixedTraceCase(std::uint64_t seed,
                                 const FuzzOptions& options) {
  FuzzCaseResult result;
  result.seed = seed;
  PointSet dataset = MakeFuzzDataset(seed, options, &result.dataset_desc);
  result.n = dataset.size();
  result.d = dataset.dim();
  Rng rng(seed * 0xd1342543de82ef95ULL + 3);
  const std::size_t d = dataset.dim();

  TieredIndexOptions tiered_options;
  tiered_options.memtable_capacity = 8 + rng.Index(25);
  tiered_options.fanout = 2 + rng.Index(3);
  TieredDualLayerIndex tiered(dataset, tiered_options);
  // Every row ever inserted, at its stable id (ids are never reused);
  // the diversified probe reads penalties through global ids.
  PointSet universe = dataset;
  std::map<TupleId, Point> live;
  std::vector<TupleId> live_ids;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    live.emplace(static_cast<TupleId>(i), dataset.Materialize(i));
    live_ids.push_back(static_cast<TupleId>(i));
  }

  // Serving-shaped trace: ~95% reads, ~5% writes, sustained long
  // enough for seals and compactions to happen under the read stream.
  const std::size_t steps = 12 * std::min<std::size_t>(dataset.size(), 50) + 60;
  for (std::size_t step = 0; step < steps; ++step) {
    if (rng.Index(100) < 5) {
      if (!live_ids.empty() && rng.Index(3) == 0) {
        const std::size_t pick = rng.Index(live_ids.size());
        const TupleId id = live_ids[pick];
        live_ids[pick] = live_ids.back();
        live_ids.pop_back();
        if (!tiered.Erase(id)) {
          result.failures.push_back("[mixed] erase of live id failed at step " +
                                    std::to_string(step));
          return result;
        }
        live.erase(id);
      } else {
        Point point;
        point.reserve(d);
        for (std::size_t a = 0; a < d; ++a) point.push_back(rng.Uniform());
        const TupleId id = tiered.Insert(PointView(point));
        universe.Add(PointView(point));
        live.emplace(id, std::move(point));
        live_ids.push_back(id);
      }
      continue;
    }
    TopKQuery query;
    query.k = 1 + rng.Index(live.size() + 2);
    query.weights = rng.SimplexWeight(d);
    const std::vector<ScoredTuple> want =
        MirrorTopK(live, query.weights, query.k);
    if (tiered.compaction_active()) ++result.mid_compaction_queries;
    CompareToMirror(tiered.Query(query), want, "mixed query", step,
                    &result.failures);
    if (!result.failures.empty()) return result;
    if (!live.empty() && rng.Index(4) == 0) {
      TopKQuery budgeted = query;
      budgeted.budget.max_evals = 1 + rng.Index(live.size());
      CheckDynamicPartial(tiered.Query(budgeted), want, step,
                          &result.failures);
      if (!result.failures.empty()) return result;
    }
    if (options.scenarios && rng.Index(8) == 0) {
      RunMixedScenarioProbes(tiered, universe, live, rng, step,
                             &result.failures);
      if (!result.failures.empty()) return result;
    }
    result.max_runs = std::max(result.max_runs, tiered.num_runs());
    result.peak_tombstones =
        std::max(result.peak_tombstones, tiered.tombstone_count());
  }
  return result;
}

}  // namespace drli
