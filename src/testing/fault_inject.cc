#include "testing/fault_inject.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/crc32c.h"
#include "common/random.h"
#include "core/serialization.h"
#include "core/tiered_index.h"
#include "storage/tiered_io.h"
#include "testing/differential.h"

namespace drli {
namespace testing {

namespace {

using snapshot::HeaderV2;
using snapshot::SectionEntry;
using snapshot::SectionKind;

}  // namespace

std::vector<std::uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DRLI_CHECK(bool(in)) << "cannot open " << path;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  DRLI_CHECK(size >= 0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  DRLI_CHECK(bool(in)) << "short read on " << path;
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DRLI_CHECK(bool(out)) << "cannot open " << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  DRLI_CHECK(bool(out)) << "short write on " << path;
}

SnapshotV2Editor::SnapshotV2Editor(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes)) {
  DRLI_CHECK_GE(bytes_.size(), sizeof(HeaderV2));
  const HeaderV2 h = header();
  DRLI_CHECK(h.magic == snapshot::kMagic && h.version == snapshot::kVersionV2);
  DRLI_CHECK_LE(h.section_table_offset +
                    std::uint64_t{h.num_sections} * sizeof(SectionEntry),
                bytes_.size());
}

HeaderV2 SnapshotV2Editor::header() const {
  HeaderV2 h;
  std::memcpy(&h, bytes_.data(), sizeof(h));
  return h;
}

void SnapshotV2Editor::SetHeader(const HeaderV2& header, bool reseal) {
  HeaderV2 h = header;
  if (reseal) h.header_crc = snapshot::ComputeHeaderCrc(h);
  std::memcpy(bytes_.data(), &h, sizeof(h));
}

std::size_t SnapshotV2Editor::num_sections() const {
  return header().num_sections;
}

SectionEntry SnapshotV2Editor::entry(std::size_t i) const {
  const HeaderV2 h = header();
  DRLI_CHECK_LT(i, h.num_sections);
  SectionEntry e;
  std::memcpy(&e,
              bytes_.data() + h.section_table_offset + i * sizeof(SectionEntry),
              sizeof(e));
  return e;
}

void SnapshotV2Editor::SetEntry(std::size_t i, const SectionEntry& entry) {
  const HeaderV2 h = header();
  DRLI_CHECK_LT(i, h.num_sections);
  std::memcpy(bytes_.data() + h.section_table_offset + i * sizeof(SectionEntry),
              &entry, sizeof(entry));
  ResealTable();
}

void SnapshotV2Editor::ResealTable() {
  HeaderV2 h = header();
  h.section_table_crc =
      Crc32c(bytes_.data() + h.section_table_offset,
             std::uint64_t{h.num_sections} * sizeof(SectionEntry));
  SetHeader(h);
}

int SnapshotV2Editor::FindSection(SectionKind kind) const {
  for (std::size_t i = 0; i < num_sections(); ++i) {
    if (entry(i).kind == static_cast<std::uint32_t>(kind)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void SnapshotV2Editor::PatchSection(SectionKind kind,
                                    std::uint64_t offset_in_section,
                                    const void* data, std::size_t len) {
  const int i = FindSection(kind);
  DRLI_CHECK_GE(i, 0) << "no section " << snapshot::SectionKindName(kind);
  SectionEntry e = entry(static_cast<std::size_t>(i));
  DRLI_CHECK_LE(offset_in_section + len, e.length);
  std::memcpy(bytes_.data() + e.offset + offset_in_section, data, len);
  e.crc = Crc32c(bytes_.data() + e.offset, e.length);
  SetEntry(static_cast<std::size_t>(i), e);
}

std::string FaultSweepReport::ToString() const {
  std::ostringstream out;
  out << cases << " mutant load(s), " << rejected << " rejected, "
      << undetected << " loaded";
  if (!violations.empty()) {
    out << ", " << violations.size() << " violation(s):";
    for (const std::string& v : violations) out << "\n  " << v;
  }
  return out.str();
}

FaultSweepReport RunSnapshotFaultSweep(const std::string& path,
                                       const FaultSweepOptions& options) {
  FaultSweepReport report;
  const std::vector<std::uint8_t> bytes = ReadFileBytes(path);
  if (bytes.size() < 8) {
    report.violations.push_back("snapshot smaller than its magic/version");
    return report;
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  const bool v2 = version == snapshot::kVersionV2;

  const auto inspected = InspectSnapshot(path);
  if (!inspected.ok()) {
    report.violations.push_back("pristine snapshot fails inspection: " +
                                inspected.status().ToString());
    return report;
  }
  const SnapshotInfo& info = inspected.value();

  const std::string tmp = path + ".fault";
  const auto probe = [&](const std::vector<std::uint8_t>& mutant,
                         const std::string& what, bool must_reject) {
    WriteFileBytes(tmp, mutant);
    for (const bool mmap : {true, false}) {
      SnapshotLoadOptions load;
      load.prefer_mmap = mmap;
      const auto loaded = LoadDualLayerIndex(tmp, load);
      ++report.cases;
      if (loaded.ok()) {
        ++report.undetected;
        if (must_reject) {
          report.violations.push_back(what + " loaded successfully via " +
                                      (mmap ? "mmap" : "owning read"));
        }
        continue;
      }
      const StatusCode code = loaded.status().code();
      if (code == StatusCode::kCorruption || code == StatusCode::kIoError) {
        ++report.rejected;
      } else {
        report.violations.push_back(what + " returned unexpected status: " +
                                    loaded.status().ToString());
      }
    }
  };

  // --- family 1: truncation at every section boundary (and +/- 1).
  std::set<std::uint64_t> cuts = {0, 4, 8, bytes.size() - 1};
  for (const SnapshotSectionInfo& row : info.sections) {
    for (const std::int64_t delta : {-1, 0, 1}) {
      const std::uint64_t edges[] = {row.offset, row.offset + row.length};
      for (const std::uint64_t edge : edges) {
        const std::int64_t cut = static_cast<std::int64_t>(edge) + delta;
        if (cut >= 0 && cut < static_cast<std::int64_t>(bytes.size())) {
          cuts.insert(static_cast<std::uint64_t>(cut));
        }
      }
    }
  }
  for (const std::uint64_t cut : cuts) {
    std::vector<std::uint8_t> mutant(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut));
    probe(mutant, "truncation to " + std::to_string(cut) + " bytes",
          /*must_reject=*/true);
  }

  // --- family 2: random single-byte flips. v2 must detect every one
  // (all bytes are covered by a CRC, the zero-padding rule, or the
  // exact-size rule); v1 has no checksums, so only no-crash is
  // asserted there.
  Rng rng(options.seed);
  for (std::size_t i = 0; i < options.num_flips; ++i) {
    const std::size_t pos = rng.Index(bytes.size());
    const std::uint8_t mask =
        static_cast<std::uint8_t>(1u << rng.Index(8));
    std::vector<std::uint8_t> mutant = bytes;
    mutant[pos] ^= mask;
    probe(mutant,
          "byte flip at " + std::to_string(pos) + " mask " +
              std::to_string(mask),
          /*must_reject=*/v2);
  }

  // --- family 3: adversarial metadata with CRCs fixed up, so the
  // mutation reaches the bounds checks instead of the checksum gate.
  if (v2) {
    const auto with_editor = [&](const std::string& what, auto mutate) {
      SnapshotV2Editor editor(bytes);
      mutate(editor);
      probe(editor.bytes(), what, /*must_reject=*/true);
    };
    with_editor("huge num_points", [](SnapshotV2Editor& e) {
      HeaderV2 h = e.header();
      h.num_points = std::uint64_t{1} << 40;
      e.SetHeader(h);
    });
    with_editor("num_points + num_virtual overflowing 32-bit ids",
                [](SnapshotV2Editor& e) {
                  HeaderV2 h = e.header();
                  h.num_points = 0xffffffffull;
                  h.num_virtual = 0xffffffffull;
                  e.SetHeader(h);
                });
    with_editor("zero dim", [](SnapshotV2Editor& e) {
      HeaderV2 h = e.header();
      h.dim = 0;
      e.SetHeader(h);
    });
    with_editor("dim above kMaxDim", [](SnapshotV2Editor& e) {
      HeaderV2 h = e.header();
      h.dim = snapshot::kMaxDim + 1;
      e.SetHeader(h);
    });
    with_editor("zero sections", [](SnapshotV2Editor& e) {
      HeaderV2 h = e.header();
      h.num_sections = 0;
      e.SetHeader(h);
    });
    with_editor("section table pushed out of range", [&](SnapshotV2Editor& e) {
      HeaderV2 h = e.header();
      h.section_table_offset = bytes.size();
      e.SetHeader(h);
    });
    with_editor("unknown header flag", [](SnapshotV2Editor& e) {
      HeaderV2 h = e.header();
      h.flags |= 0x80000000u;
      e.SetHeader(h);
    });
    with_editor("huge section length", [](SnapshotV2Editor& e) {
      SectionEntry entry = e.entry(1);
      entry.length = 0xffffffffffffff00ull;
      e.SetEntry(1, entry);
    });
    with_editor("section offset past end of file", [&](SnapshotV2Editor& e) {
      SectionEntry entry = e.entry(1);
      entry.offset = (bytes.size() / snapshot::kSectionAlignment + 2) *
                     snapshot::kSectionAlignment;
      e.SetEntry(1, entry);
    });
    with_editor("misaligned section offset", [](SnapshotV2Editor& e) {
      SectionEntry entry = e.entry(1);
      entry.offset += 1;
      e.SetEntry(1, entry);
    });
    with_editor("unknown section kind", [](SnapshotV2Editor& e) {
      SectionEntry entry = e.entry(0);
      entry.kind = 77;
      e.SetEntry(0, entry);
    });
    with_editor("duplicate section kind", [](SnapshotV2Editor& e) {
      SectionEntry entry = e.entry(1);
      entry.kind = e.entry(0).kind;
      e.SetEntry(1, entry);
    });
    with_editor("overlapping sections", [](SnapshotV2Editor& e) {
      SectionEntry entry = e.entry(1);
      entry.offset = e.entry(0).offset;
      e.SetEntry(1, entry);
    });
    {
      // Shrink the points section with its CRC recomputed over the
      // shorter payload: the CRC passes, the shape check must not.
      SnapshotV2Editor editor(bytes);
      const int i = editor.FindSection(SectionKind::kPoints);
      if (i >= 0 && editor.entry(static_cast<std::size_t>(i)).length >= 8) {
        SectionEntry entry = editor.entry(static_cast<std::size_t>(i));
        entry.length -= 8;
        entry.crc = Crc32c(bytes.data() + entry.offset, entry.length);
        editor.SetEntry(static_cast<std::size_t>(i), entry);
        probe(editor.bytes(), "shrunk points section with resealed CRC",
              /*must_reject=*/true);
      }
    }
    {
      // Nonzero byte in the padding gap between table and first section.
      SnapshotV2Editor editor(bytes);
      const HeaderV2 h = editor.header();
      const std::uint64_t table_end =
          h.section_table_offset +
          std::uint64_t{h.num_sections} * sizeof(SectionEntry);
      std::uint64_t first = bytes.size();
      for (std::size_t i = 0; i < editor.num_sections(); ++i) {
        first = std::min(first, editor.entry(i).offset);
      }
      if (first > table_end) {
        std::vector<std::uint8_t> mutant = bytes;
        mutant[table_end] = 0xAB;
        probe(mutant, "nonzero padding byte", /*must_reject=*/true);
      }
    }
    {
      std::vector<std::uint8_t> mutant = bytes;
      mutant.push_back(0);
      probe(mutant, "trailing byte appended", /*must_reject=*/true);
    }
  } else {
    // v1: adversarial length prefixes. The bounded reader must reject
    // every count that exceeds the bytes actually left in the file --
    // these are exactly the inputs that used to reach resize(n).
    for (const SnapshotSectionInfo& row : info.sections) {
      const std::uint64_t prefix_offset =
          row.name == "weight_chain" ? row.offset + 4 : row.offset;
      const std::uint64_t huge_lengths[] = {
          0xffffffffffffffffull, 0x7fffffffffffffffull, bytes.size()};
      for (const std::uint64_t huge : huge_lengths) {
        std::vector<std::uint8_t> mutant = bytes;
        std::memcpy(mutant.data() + prefix_offset, &huge, sizeof(huge));
        probe(mutant,
              "v1 " + row.name + " length prefix = " + std::to_string(huge),
              /*must_reject=*/true);
      }
    }
    // The dim field sits right after the name segment.
    const std::uint64_t dim_offset =
        info.sections.front().offset + info.sections.front().length;
    for (const std::uint32_t bad_dim : {0u, snapshot::kMaxDim + 1}) {
      std::vector<std::uint8_t> mutant = bytes;
      std::memcpy(mutant.data() + dim_offset, &bad_dim, sizeof(bad_dim));
      probe(mutant, "v1 dim = " + std::to_string(bad_dim),
            /*must_reject=*/true);
    }
  }

  std::remove(tmp.c_str());
  return report;
}

namespace {

namespace fs = std::filesystem;

// The fixed probe queries of the tiered sweep; answers are compared
// exactly (same ids, same score bits) against the durable generation.
std::vector<TopKQuery> TieredProbeQueries(std::uint64_t seed,
                                          std::size_t dim) {
  Rng rng(seed ^ 0x2545f4914f6cdd1dULL);
  std::vector<TopKQuery> queries;
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{9},
                              std::size_t{40}}) {
    TopKQuery query;
    query.k = k;
    query.weights = rng.SimplexWeight(dim);
    queries.push_back(std::move(query));
  }
  TopKQuery uniform;
  uniform.k = 5;
  uniform.weights.assign(dim, 1.0 / static_cast<double>(dim));
  queries.push_back(std::move(uniform));
  return queries;
}

std::vector<std::vector<ScoredTuple>> TieredProbeAnswers(
    const TieredDualLayerIndex& index, const std::vector<TopKQuery>& queries) {
  std::vector<std::vector<ScoredTuple>> answers;
  answers.reserve(queries.size());
  for (const TopKQuery& query : queries) {
    answers.push_back(index.Query(query).items);
  }
  return answers;
}

bool TieredAnswersEqual(const std::vector<std::vector<ScoredTuple>>& a,
                        const std::vector<std::vector<ScoredTuple>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (std::size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].score != b[q][i].score) {
        return false;
      }
    }
  }
  return true;
}

// One seeded mutation-trace step against the index (insert-heavy with
// erases mixed in, plus explicit maintenance pokes).
void TieredTraceStep(Rng* rng, TieredDualLayerIndex* index,
                     std::vector<TupleId>* live) {
  const std::size_t op = rng->Index(8);
  if (op <= 4 || live->empty()) {
    Point point;
    point.reserve(index->dim());
    for (std::size_t a = 0; a < index->dim(); ++a) {
      point.push_back(rng->Uniform());
    }
    live->push_back(index->Insert(PointView(point)));
  } else if (op <= 6) {
    const std::size_t pick = rng->Index(live->size());
    index->Erase((*live)[pick]);
    (*live)[pick] = live->back();
    live->pop_back();
  } else {
    index->CompactStep();
  }
}

}  // namespace

std::string TieredFaultReport::ToString() const {
  std::ostringstream out;
  out << cases << " case(s), " << rejected << " rejected, "
      << recovered_previous << " recovered to the previous generation, "
      << recovered_current << " loaded the new generation";
  if (!violations.empty()) {
    out << ", " << violations.size() << " violation(s):";
    for (const std::string& v : violations) out << "\n  " << v;
  }
  return out.str();
}

TieredFaultReport RunTieredFaultSweep(const std::string& scratch_dir,
                                      const TieredFaultOptions& options) {
  TieredFaultReport report;
  std::error_code ec;
  const fs::path scratch(scratch_dir);
  const fs::path dir_a = scratch / "gen_a";
  const fs::path dir_b = scratch / "gen_b";
  const fs::path dir_r = scratch / "recover";
  for (const fs::path& dir : {dir_a, dir_b, dir_r}) {
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    if (ec) {
      report.violations.push_back("cannot create scratch dir " +
                                  dir.string());
      return report;
    }
  }
  constexpr const char* kManifestName = "state.drlt";

  // Build generation A through a seeded trace: small memtable and
  // fanout so the saved state spans several runs, live tombstones, and
  // (often) an in-flight compaction job.
  Rng rng(options.seed);
  const std::size_t dim = 3;
  TieredIndexOptions build;
  build.memtable_capacity = 8;
  build.fanout = 2;
  build.auto_compact = true;
  build.compact_rows_per_step = 16;
  TieredDualLayerIndex index(dim, build);
  std::vector<TupleId> live;
  for (std::size_t step = 0; step < 120; ++step) {
    TieredTraceStep(&rng, &index, &live);
  }
  const std::vector<TopKQuery> queries = TieredProbeQueries(options.seed, dim);

  const std::string manifest_a = (dir_a / kManifestName).string();
  const std::string manifest_b = (dir_b / kManifestName).string();
  {
    const Status saved = SaveTieredIndex(index, manifest_a);
    if (!saved.ok()) {
      report.violations.push_back("generation A save failed: " +
                                  saved.ToString());
      return report;
    }
  }
  // The durable-A answers must come from a load of A's files: the live
  // index may carry an unsealed compaction job the snapshot does not.
  std::vector<std::vector<ScoredTuple>> answers_a;
  {
    StatusOr<TieredDualLayerIndex> a = LoadTieredIndex(manifest_a);
    if (!a.ok()) {
      report.violations.push_back("pristine generation A fails to load: " +
                                  a.status().ToString());
      return report;
    }
    answers_a = TieredProbeAnswers(a.value(), queries);
  }

  for (std::size_t step = 0; step < options.mutations_between; ++step) {
    TieredTraceStep(&rng, &index, &live);
  }

  TieredSaveOptions save_b;
  std::vector<std::string> write_order;
  save_b.write_order = &write_order;
  save_b.sweep_strays = false;  // the sweep runs after the crash window
  {
    const Status saved = SaveTieredIndex(index, manifest_b, save_b);
    if (!saved.ok()) {
      report.violations.push_back("generation B save failed: " +
                                  saved.ToString());
      return report;
    }
  }
  std::vector<std::vector<ScoredTuple>> answers_b;
  {
    StatusOr<TieredDualLayerIndex> b = LoadTieredIndex(manifest_b);
    if (!b.ok()) {
      report.violations.push_back("pristine generation B fails to load: " +
                                  b.status().ToString());
      return report;
    }
    answers_b = TieredProbeAnswers(b.value(), queries);
  }

  const auto reset_recovery_from = [&](const fs::path& source) {
    fs::remove_all(dir_r, ec);
    fs::create_directories(dir_r, ec);
    for (const fs::directory_entry& entry : fs::directory_iterator(source)) {
      fs::copy_file(entry.path(), dir_r / entry.path().filename(),
                    fs::copy_options::overwrite_existing, ec);
    }
  };
  const std::string manifest_r = (dir_r / kManifestName).string();

  // --- family 1: crash between any two file commits of B's save.
  // Every prefix of B's write order applied over A's files must
  // recover to a durable generation: A while B's manifest is not yet
  // committed, B once it is.
  for (std::size_t j = 0; j <= write_order.size(); ++j) {
    reset_recovery_from(dir_a);
    for (std::size_t i = 0; i < j; ++i) {
      const fs::path src(write_order[i]);
      fs::copy_file(src, dir_r / src.filename(),
                    fs::copy_options::overwrite_existing, ec);
    }
    ++report.cases;
    const bool expect_b = j == write_order.size();
    StatusOr<TieredDualLayerIndex> recovered = LoadTieredIndex(manifest_r);
    if (!recovered.ok()) {
      report.violations.push_back(
          "crash prefix " + std::to_string(j) + "/" +
          std::to_string(write_order.size()) +
          " failed to recover: " + recovered.status().ToString());
      continue;
    }
    const std::vector<std::vector<ScoredTuple>> got =
        TieredProbeAnswers(recovered.value(), queries);
    if (!TieredAnswersEqual(got, expect_b ? answers_b : answers_a)) {
      report.violations.push_back(
          "crash prefix " + std::to_string(j) + "/" +
          std::to_string(write_order.size()) + " recovered generation " +
          std::to_string(recovered.value().generation()) +
          " with diverging answers");
      continue;
    }
    if (expect_b) {
      ++report.recovered_current;
    } else {
      ++report.recovered_previous;
    }
  }

  // Corrupt-mutant probe: overwrite one file in an otherwise complete
  // copy of B and require a clean rejection.
  const auto probe_reject = [&](const std::string& target,
                                const std::vector<std::uint8_t>& mutant,
                                const std::string& what) {
    WriteFileBytes(target, mutant);
    ++report.cases;
    StatusOr<TieredDualLayerIndex> loaded = LoadTieredIndex(manifest_r);
    if (loaded.ok()) {
      report.violations.push_back(what + " loaded successfully");
      return;
    }
    const StatusCode code = loaded.status().code();
    if (code == StatusCode::kCorruption || code == StatusCode::kIoError) {
      ++report.rejected;
    } else {
      report.violations.push_back(what + " returned unexpected status: " +
                                  loaded.status().ToString());
    }
  };

  // --- family 2: manifest truncation at every byte (strided when the
  // manifest outgrows truncation_cap).
  const std::vector<std::uint8_t> manifest_bytes = ReadFileBytes(manifest_b);
  reset_recovery_from(dir_b);
  const std::size_t stride =
      manifest_bytes.size() <= options.truncation_cap
          ? 1
          : manifest_bytes.size() / options.truncation_cap + 1;
  for (std::size_t cut = 0; cut < manifest_bytes.size(); cut += stride) {
    const std::vector<std::uint8_t> mutant(manifest_bytes.begin(),
                                           manifest_bytes.begin() +
                                               static_cast<long>(cut));
    probe_reject(manifest_r, mutant,
                 "manifest truncated to " + std::to_string(cut) + " bytes");
  }

  // --- family 3: run-file truncation at every v2 section boundary +/-1.
  StatusOr<TieredManifestInfo> info_b = InspectTieredManifest(manifest_b);
  if (!info_b.ok() || info_b.value().runs.empty()) {
    report.violations.push_back("generation B manifest has no runs to cut");
    return report;
  }
  const std::string run_name = info_b.value().runs.front().file;
  const std::string run_b = (dir_b / run_name).string();
  const std::string run_r = (dir_r / run_name).string();
  const std::vector<std::uint8_t> run_bytes = ReadFileBytes(run_b);
  const auto run_info = InspectSnapshot(run_b);
  if (!run_info.ok()) {
    report.violations.push_back("pristine run snapshot fails inspection: " +
                                run_info.status().ToString());
    return report;
  }
  reset_recovery_from(dir_b);
  std::set<std::uint64_t> cuts = {0, 4, 8, run_bytes.size() - 1};
  for (const SnapshotSectionInfo& row : run_info.value().sections) {
    for (const std::int64_t delta : {-1, 0, 1}) {
      const std::uint64_t edges[] = {row.offset, row.offset + row.length};
      for (const std::uint64_t edge : edges) {
        const std::int64_t cut = static_cast<std::int64_t>(edge) + delta;
        if (cut >= 0 && cut < static_cast<std::int64_t>(run_bytes.size())) {
          cuts.insert(static_cast<std::uint64_t>(cut));
        }
      }
    }
  }
  for (const std::uint64_t cut : cuts) {
    const std::vector<std::uint8_t> mutant(run_bytes.begin(),
                                           run_bytes.begin() +
                                               static_cast<long>(cut));
    probe_reject(run_r, mutant,
                 "run file truncated to " + std::to_string(cut) + " bytes");
  }

  // --- family 4: seeded single-byte flips, alternating between the
  // manifest and the run file; both are fully checksummed, so every
  // flip must be detected.
  reset_recovery_from(dir_b);
  for (std::size_t i = 0; i < options.num_flips; ++i) {
    const bool hit_manifest = (i % 2) == 0;
    const std::vector<std::uint8_t>& base =
        hit_manifest ? manifest_bytes : run_bytes;
    const std::size_t pos = rng.Index(base.size());
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << rng.Index(8));
    std::vector<std::uint8_t> mutant = base;
    mutant[pos] ^= mask;
    probe_reject(hit_manifest ? manifest_r : run_r, mutant,
                 std::string(hit_manifest ? "manifest" : "run") +
                     " byte flip at " + std::to_string(pos) + " mask " +
                     std::to_string(mask));
    // Restore the mutated file for the next iteration.
    WriteFileBytes(hit_manifest ? manifest_r : run_r, base);
  }

  for (const fs::path& dir : {dir_a, dir_b, dir_r}) fs::remove_all(dir, ec);
  return report;
}

std::string BudgetFaultReport::ToString() const {
  std::ostringstream out;
  out << cases << " budgeted quer(ies), " << partials << " partial, "
      << completes << " complete";
  if (!violations.empty()) {
    out << ", " << violations.size() << " violation(s):";
    for (const std::string& v : violations) out << "\n  " << v;
  }
  return out.str();
}

BudgetFaultReport RunBudgetFaultSweep(const PointSet& points,
                                      const std::vector<TopKQuery>& queries,
                                      const BudgetFaultOptions& options) {
  BudgetFaultReport report;
  StatusOr<DifferentialHarness> harness = DifferentialHarness::Build(points);
  if (!harness.ok()) {
    report.violations.push_back("harness build failed: " +
                                harness.status().ToString());
    return report;
  }
  const std::size_t stride = std::max<std::size_t>(1, options.stride);
  for (const TopKQuery& base : queries) {
    for (const auto& [kind, cost] : harness.value().UnbudgetedCosts(base)) {
      std::size_t limit = cost;
      if (options.max_steps_per_family > 0) {
        limit = std::min(limit, options.max_steps_per_family);
      }
      // s = cost is the boundary case where the gate arms but never
      // fires; every smaller s cuts the traversal mid-flight.
      for (std::size_t s = 1; s <= limit; s += stride) {
        {
          TopKQuery query = base;
          query.budget.max_evals = s;
          std::size_t partial = 0;
          std::vector<std::string> violations =
              harness.value().CheckBudgetedQuery(query, kind, &partial);
          ++report.cases;
          report.partials += partial;
          report.completes += 1 - partial;
          report.violations.insert(report.violations.end(),
                                   violations.begin(), violations.end());
        }
        if (options.cancel_faults) {
          CancelToken token;
          token.CancelAfterChecks(static_cast<std::int64_t>(s));
          TopKQuery query = base;
          query.budget.cancel = &token;
          std::size_t partial = 0;
          std::vector<std::string> violations =
              harness.value().CheckBudgetedQuery(query, kind, &partial);
          ++report.cases;
          report.partials += partial;
          report.completes += 1 - partial;
          report.violations.insert(report.violations.end(),
                                   violations.begin(), violations.end());
        }
        if (report.violations.size() > 32) return report;  // enough signal
      }
    }
  }
  return report;
}

}  // namespace testing
}  // namespace drli
