#include "testing/scenario_oracle.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <sstream>
#include <vector>

#include "common/random.h"
#include "core/dual_layer.h"
#include "core/tiered_index.h"
#include "scenarios/constrained.h"
#include "scenarios/diversified.h"
#include "scenarios/reverse_topk.h"
#include "shard/sharded_index.h"

namespace drli {

namespace {

// Reverse-interval endpoints: the table breakpoint B/(B-A) and the
// sweep crossing (ia-ib)/(sb-sa) are the same rational number computed
// through different FP expressions; they agree to ~1 ulp, far inside
// this tolerance, while genuinely distinct breakpoints on fuzz-scale
// datasets sit far outside it.
constexpr double kIntervalEps = 1e-9;

std::string DescribeBox(const AttributeBox& box) {
  std::ostringstream out;
  out << "box=";
  for (std::size_t a = 0; a < box.dim(); ++a) {
    out << (a ? "x" : "") << "[" << box.lo[a] << "," << box.hi[a] << "]";
  }
  return out.str();
}

std::string DescribeWeights(const Point& weights) {
  std::ostringstream out;
  out << "w=(";
  for (std::size_t i = 0; i < weights.size(); ++i) {
    out << (i ? "," : "") << weights[i];
  }
  out << ")";
  return out.str();
}

// An axis-aligned box spanned by two sampled tuples. Both span points
// sit exactly on box corners, so FP boundary ties on the inclusive
// edges are exercised by construction.
AttributeBox BoxFromTuples(const PointSet& points, TupleId a, TupleId b) {
  const std::size_t d = points.dim();
  AttributeBox box;
  box.lo.resize(d);
  box.hi.resize(d);
  for (std::size_t attr = 0; attr < d; ++attr) {
    box.lo[attr] = std::min(points.At(a, attr), points.At(b, attr));
    box.hi[attr] = std::max(points.At(a, attr), points.At(b, attr));
  }
  return box;
}

// Simplex weights with one coordinate forced to exactly zero
// (renormalized) -- the ValidateQuery boundary every family must
// accept. Requires d >= 2 so one positive entry survives.
Point BoundaryWeights(Rng& rng, std::size_t d) {
  Point w = rng.SimplexWeight(d);
  w[rng.Index(d)] = 0.0;
  double sum = 0.0;
  for (double v : w) sum += v;
  for (double& v : w) v /= sum;
  return w;
}

struct ScenarioEngines {
  DualLayerIndex dl;
  ShardedDualLayerIndex sdl;
  TieredDualLayerIndex tdl;
};

ScenarioEngines BuildEngines(const PointSet& points, Rng& rng) {
  DualLayerOptions dl_opts;
  dl_opts.build_zero_layer = true;
  dl_opts.build_threads = 1;

  ShardedBuildOptions sh_opts;
  sh_opts.num_shards = 2 + rng.Index(3);  // 2..4
  sh_opts.shard_options.build_zero_layer = true;
  sh_opts.build_threads = 1;

  // Small memtable so realistic datasets land in several runs; pure
  // inserts in id order keep tiered ids identical to row ids.
  TieredIndexOptions t_opts;
  t_opts.memtable_capacity = 8 + rng.Index(25);

  ScenarioEngines engines{
      DualLayerIndex::Build(points, dl_opts),
      ShardedDualLayerIndex::Build(points, sh_opts),
      TieredDualLayerIndex(points.dim(), t_opts),
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    engines.tdl.Insert(points[i]);
  }
  return engines;
}

// === constrained ============================================================

// Exact comparison: engines and the scan share the scalar Score and
// the canonical order, so complete answers must match bit-for-bit.
void CompareConstrained(const char* engine, const TopKResult& got,
                        const TopKResult& want, const ConstrainedQuery& query,
                        std::uint64_t seed,
                        std::vector<std::string>* failures) {
  std::ostringstream tag;
  tag << "seed=" << seed << " constrained/" << engine << " k=" << query.k
      << " " << DescribeWeights(query.weights) << " " << DescribeBox(query.box);
  if (!got.complete()) {
    failures->push_back(tag.str() + ": unbudgeted query did not complete: " +
                        got.error);
    return;
  }
  if (got.certified_prefix != got.items.size()) {
    failures->push_back(tag.str() + ": complete result not fully certified");
  }
  if (got.items.size() != want.items.size()) {
    std::ostringstream out;
    out << tag.str() << ": size " << got.items.size() << " want "
        << want.items.size();
    failures->push_back(out.str());
    return;
  }
  for (std::size_t i = 0; i < want.items.size(); ++i) {
    if (got.items[i].id != want.items[i].id ||
        got.items[i].score != want.items[i].score) {
      std::ostringstream out;
      out << tag.str() << ": item " << i << " = (" << got.items[i].id << ","
          << got.items[i].score << ") want (" << want.items[i].id << ","
          << want.items[i].score << ")";
      failures->push_back(out.str());
      return;
    }
  }
}

// A budgeted partial must certify only a true prefix of the exact
// answer, and its frontier bound must not exclude any unreturned
// in-box tuple scoring strictly below it.
void CheckConstrainedPartial(const char* engine, const TopKResult& got,
                             const TopKResult& want,
                             const ConstrainedQuery& query, std::uint64_t seed,
                             std::vector<std::string>* failures) {
  std::ostringstream tag;
  tag << "seed=" << seed << " constrained-budget/" << engine << " k=" << query.k
      << " " << DescribeBox(query.box);
  if (got.certified_prefix > got.items.size()) {
    failures->push_back(tag.str() + ": certified_prefix exceeds items");
    return;
  }
  if (got.certified_prefix > want.items.size()) {
    failures->push_back(tag.str() + ": certified more than the answer holds");
    return;
  }
  for (std::size_t i = 0; i < got.certified_prefix; ++i) {
    if (got.items[i].id != want.items[i].id ||
        got.items[i].score != want.items[i].score) {
      std::ostringstream out;
      out << tag.str() << ": certified item " << i << " = ("
          << got.items[i].id << "," << got.items[i].score << ") want ("
          << want.items[i].id << "," << want.items[i].score << ")";
      failures->push_back(out.str());
      return;
    }
  }
  if (got.complete() && (got.certified_prefix != got.items.size() ||
                         got.items.size() != want.items.size())) {
    failures->push_back(tag.str() +
                        ": complete budgeted run disagrees with reference");
  }
}

void RunConstrainedProbe(const ScenarioEngines& engines,
                         const PointSet& points, const ConstrainedQuery& query,
                         std::size_t budget_probes, Rng& rng,
                         std::uint64_t seed,
                         std::vector<std::string>* failures) {
  const TopKResult want = ConstrainedTopKScan(points, query);
  const TopKResult dl = ConstrainedTopK(engines.dl, query);
  const TopKResult sdl = ConstrainedTopK(engines.sdl, query);
  const TopKResult tdl = ConstrainedTopK(engines.tdl, query);
  CompareConstrained("dl+", dl, want, query, seed, failures);
  CompareConstrained("sdl+", sdl, want, query, seed, failures);
  CompareConstrained("tdl+", tdl, want, query, seed, failures);

  // Budget cuts across the full cost range, engine by engine.
  const std::size_t max_cost =
      std::max({dl.stats.tuples_evaluated, sdl.stats.tuples_evaluated,
                tdl.stats.tuples_evaluated, std::size_t{1}});
  for (std::size_t cut = 0; cut < budget_probes; ++cut) {
    ConstrainedQuery budgeted = query;
    budgeted.budget.max_evals = 1 + rng.Index(max_cost);
    CheckConstrainedPartial("dl+", ConstrainedTopK(engines.dl, budgeted),
                            want, budgeted, seed, failures);
    CheckConstrainedPartial("sdl+", ConstrainedTopK(engines.sdl, budgeted),
                            want, budgeted, seed, failures);
    CheckConstrainedPartial("tdl+", ConstrainedTopK(engines.tdl, budgeted),
                            want, budgeted, seed, failures);
  }
}

// === diversified ============================================================

void CompareDiversified(const char* engine, const DiversifiedResult& got,
                        const DiversifiedResult& want,
                        const DiversifiedQuery& query, std::uint64_t seed,
                        std::vector<std::string>* failures) {
  std::ostringstream tag;
  tag << "seed=" << seed << " diversified/" << engine << " k=" << query.k
      << " lambda=" << query.lambda << " " << DescribeWeights(query.weights);
  if (!got.complete()) {
    failures->push_back(tag.str() + ": unbudgeted query did not complete: " +
                        got.error);
    return;
  }
  if (got.certified_prefix != got.picks.size()) {
    failures->push_back(tag.str() + ": complete result not fully certified");
  }
  if (got.picks.size() != want.picks.size()) {
    std::ostringstream out;
    out << tag.str() << ": picks " << got.picks.size() << " want "
        << want.picks.size();
    failures->push_back(out.str());
    return;
  }
  for (std::size_t i = 0; i < want.picks.size(); ++i) {
    if (got.picks[i].id != want.picks[i].id ||
        got.picks[i].score != want.picks[i].score ||
        got.picks[i].utility != want.picks[i].utility) {
      std::ostringstream out;
      out << tag.str() << ": pick " << i << " = id " << got.picks[i].id
          << " g=" << got.picks[i].utility << " want id " << want.picks[i].id
          << " g=" << want.picks[i].utility;
      failures->push_back(out.str());
      return;
    }
  }
}

void RunDiversifiedProbe(const ScenarioEngines& engines,
                         const PointSet& points, const DiversifiedQuery& query,
                         std::uint64_t seed, Rng& rng,
                         std::vector<std::string>* failures) {
  const DiversifiedResult want = DiversifiedTopKScan(points, query);
  CompareDiversified("dl+", DiversifiedTopK(engines.dl, points, query), want,
                     query, seed, failures);
  CompareDiversified("sdl+", DiversifiedTopK(engines.sdl, points, query),
                     want, query, seed, failures);
  CompareDiversified("tdl+", DiversifiedTopK(engines.tdl, points, query),
                     want, query, seed, failures);

  // One budget cut: the certified prefix must be a true greedy prefix.
  DiversifiedQuery budgeted = query;
  budgeted.budget.max_evals = 1 + rng.Index(std::max<std::size_t>(
                                      1, points.size()));
  const DiversifiedResult partial =
      DiversifiedTopK(engines.dl, points, budgeted);
  std::ostringstream tag;
  tag << "seed=" << seed << " diversified-budget k=" << query.k
      << " lambda=" << query.lambda;
  if (partial.certified_prefix > partial.picks.size() ||
      partial.certified_prefix > want.picks.size()) {
    failures->push_back(tag.str() + ": certified prefix out of range");
    return;
  }
  for (std::size_t i = 0; i < partial.certified_prefix; ++i) {
    if (partial.picks[i].id != want.picks[i].id ||
        partial.picks[i].utility != want.picks[i].utility) {
      std::ostringstream out;
      out << tag.str() << ": certified pick " << i << " = id "
          << partial.picks[i].id << " want id " << want.picks[i].id;
      failures->push_back(out.str());
      return;
    }
  }
}

// === reverse ================================================================

// Brute membership: is `target` in the canonical top-k at weight
// (w1, 1 - w1)? Only called at weights > kIntervalEps away from every
// interval endpoint, where the answer is FP-unambiguous.
bool InTopK2D(const PointSet& points, TupleId target, std::size_t k,
              double w1) {
  const Point w{w1, 1.0 - w1};
  const double target_score = Score(w, points[target]);
  std::size_t better = 0;
  for (std::size_t id = 0; id < points.size(); ++id) {
    const double s = Score(w, points[id]);
    if (s < target_score || (s == target_score && id < target)) ++better;
  }
  return better < k;
}

void RunReverseProbe(const ScenarioEngines& engines, const PointSet& points,
                     const ReverseTopKQuery& query, std::uint64_t seed,
                     Rng& rng, std::vector<std::string>* failures) {
  const ReverseTopKResult want = ReverseTopK2DScan(points, query);
  const ReverseTopKResult got = ReverseTopK2D(engines.dl, query);
  std::ostringstream tag;
  tag << "seed=" << seed << " reverse target=" << query.target
      << " k=" << query.k
      << (got.used_weight_table ? " (weight-table)" : " (sweep)");
  if (!got.complete() || !want.complete()) {
    failures->push_back(tag.str() + ": unbudgeted reverse did not complete");
    return;
  }
  if (got.intervals.size() != want.intervals.size()) {
    std::ostringstream out;
    out << tag.str() << ": " << got.intervals.size() << " intervals, want "
        << want.intervals.size();
    failures->push_back(out.str());
    return;
  }
  for (std::size_t i = 0; i < want.intervals.size(); ++i) {
    if (std::abs(got.intervals[i].lo - want.intervals[i].lo) > kIntervalEps ||
        std::abs(got.intervals[i].hi - want.intervals[i].hi) > kIntervalEps) {
      std::ostringstream out;
      out << tag.str() << ": interval " << i << " = [" << got.intervals[i].lo
          << "," << got.intervals[i].hi << "] want [" << want.intervals[i].lo
          << "," << want.intervals[i].hi << "]";
      failures->push_back(out.str());
      return;
    }
  }
  // Membership probes at random interior points of each interval (wide
  // intervals only: the probe must sit clear of both FP-fuzzy
  // endpoints). Random rather than midpoint: degenerate datasets (many
  // collinear rows) put multi-way score crossings at round weights like
  // 1/2, where membership can hold at exactly one point via the id
  // tie-break -- a measure-zero event intervals legitimately ignore,
  // and one a symmetric midpoint hits with probability ~1.
  const auto interior = [&rng](double lo, double hi) {
    return lo + rng.Uniform(0.25, 0.75) * (hi - lo);
  };
  for (const WeightInterval& iv : want.intervals) {
    if (iv.hi - iv.lo <= 4 * kIntervalEps) continue;
    const double probe_w = interior(iv.lo, iv.hi);
    if (!InTopK2D(points, query.target, query.k, probe_w)) {
      std::ostringstream out;
      out << tag.str() << ": target not in top-k at reported w1=" << probe_w;
      failures->push_back(out.str());
      return;
    }
  }
  // And inside the complementary gaps: there the target must NOT be a
  // member.
  double prev = 0.0;
  for (std::size_t i = 0; i <= want.intervals.size(); ++i) {
    const double next =
        i < want.intervals.size() ? want.intervals[i].lo : 1.0;
    if (next - prev > 4 * kIntervalEps) {
      const double probe_w = interior(prev, next);
      if (InTopK2D(points, query.target, query.k, probe_w)) {
        std::ostringstream out;
        out << tag.str() << ": target unexpectedly in top-k at gap w1="
            << probe_w;
        failures->push_back(out.str());
        return;
      }
    }
    if (i < want.intervals.size()) prev = want.intervals[i].hi;
  }
}

}  // namespace

std::vector<std::string> CheckScenarioFamilies(
    const PointSet& points, std::uint64_t seed,
    const ScenarioOracleOptions& options) {
  std::vector<std::string> failures;
  const std::size_t n = points.size();
  const std::size_t d = points.dim();
  if (n == 0 || d < 2) return failures;

  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  ScenarioEngines engines = BuildEngines(points, rng);

  // --- constrained: data-spanned boxes + boundary weights ---
  for (std::size_t probe = 0; probe < options.constrained_probes; ++probe) {
    ConstrainedQuery query;
    query.weights = probe % 3 == 2 ? BoundaryWeights(rng, d)
                                   : rng.SimplexWeight(d);
    query.k = 1 + rng.Index(n + 2);  // includes k > |matches|
    query.box = BoxFromTuples(points, static_cast<TupleId>(rng.Index(n)),
                              static_cast<TupleId>(rng.Index(n)));
    RunConstrainedProbe(engines, points, query, options.budget_probes, rng,
                        seed, &failures);
  }

  if (options.degenerate_boxes) {
    const TupleId anchor = static_cast<TupleId>(rng.Index(n));
    ConstrainedQuery query;
    query.weights = rng.SimplexWeight(d);
    query.k = 3;

    // Inverted (empty) box: matches nothing on any engine.
    query.box = AttributeBox::All(d);
    query.box.lo[0] = 1.0;
    query.box.hi[0] = 0.0;
    RunConstrainedProbe(engines, points, query, 0, rng, seed, &failures);

    // All-space box: the constrained answer is the plain top-k.
    query.box = AttributeBox::All(d);
    RunConstrainedProbe(engines, points, query, 0, rng, seed, &failures);

    // Point box (lo == hi == a data point): exactly the duplicates of
    // the anchor qualify; k far beyond the match count.
    query.box = BoxFromTuples(points, anchor, anchor);
    query.k = n + 3;
    RunConstrainedProbe(engines, points, query, 0, rng, seed, &failures);
  }

  // --- diversified ---
  for (std::size_t probe = 0; probe < options.diversified_probes; ++probe) {
    DiversifiedQuery query;
    query.weights = rng.SimplexWeight(d);
    query.k = 1 + rng.Index(std::min<std::size_t>(n + 1, 6));
    query.lambda = probe == 0 ? 0.0 : rng.Uniform(0.05, 2.0);
    query.pool_factor = 2;  // small: forces pool growth to certify
    RunDiversifiedProbe(engines, points, query, seed, rng, &failures);
  }

  // --- reverse (2-d only) ---
  if (d == 2) {
    for (std::size_t probe = 0; probe < options.reverse_probes; ++probe) {
      ReverseTopKQuery query;
      query.target = static_cast<TupleId>(rng.Index(n));
      query.k = 1 + rng.Index(5);
      RunReverseProbe(engines, points, query, seed, rng, &failures);
    }
  }
  return failures;
}

}  // namespace drli
