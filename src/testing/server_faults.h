// Server fault injection: stands up a real TopKServer on a loopback
// socket and attacks it the way a hostile or unlucky network would,
// asserting the robustness contract of DESIGN.md §10 -- the process
// never crashes, every reply that arrives is a well-formed frame, and
// degradation is always explicit (kMalformed / kOverloaded / certified
// partial), never silent.
//
// Fault families:
//  * corrupt frames: seeded single-byte flips over a valid query
//    frame, truncated prefixes, and raw garbage bytes -- each followed
//    by a liveness probe on a fresh connection;
//  * mid-request disconnects: the client vanishes after a partial
//    frame, after a full request, and before draining the reply;
//  * reload-during-query races: a publisher thread flips CURRENT
//    between two generations under a live query stream; every answer
//    must exactly match the generation it claims to come from;
//  * deadline storms: bursts of near-zero deadlines and tiny step
//    budgets -- every reply must be a well-formed certified partial or
//    complete answer;
//  * overload: concurrent clients past the in-flight cap -- sheds must
//    be explicit kOverloaded replies carrying a retry hint.

#ifndef DRLI_TESTING_SERVER_FAULTS_H_
#define DRLI_TESTING_SERVER_FAULTS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace drli {
namespace testing {

struct ServerFaultOptions {
  std::uint64_t seed = 1;
  // Corrupt-frame cases (flips / truncations / garbage).
  std::size_t frame_faults = 120;
  // Reload flips raced against the query stream.
  std::size_t reload_races = 12;
  // Queries in the deadline storm.
  std::size_t deadline_storm = 96;
  // Concurrent overload clients.
  std::size_t overload_clients = 8;
};

struct ServerFaultReport {
  std::size_t cases = 0;             // fault injections attempted
  std::size_t malformed_replies = 0; // explicit kMalformed rejections
  std::size_t disconnects = 0;       // abandoned-connection cases
  std::size_t partials = 0;          // certified partials under storms
  std::size_t sheds = 0;             // explicit kOverloaded replies
  std::size_t reload_swaps = 0;      // generation swaps observed
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

// Runs the sweep inside `scratch_dir` (created if missing; contents
// removed at the end). Builds its own snapshots, serves them from an
// ephemeral loopback port, and tears the server down gracefully.
ServerFaultReport RunServerFaultSweep(const std::string& scratch_dir,
                                      const ServerFaultOptions& options = {});

}  // namespace testing
}  // namespace drli

#endif  // DRLI_TESTING_SERVER_FAULTS_H_
